//! One function per paper figure/table. See `EXPERIMENTS.md` for the mapping
//! between the paper's axes and the scaled axes used here.

use std::time::Duration;

use ce_core::ExtSccAlgo;
use ce_dfs_scc::{DfsMode, DfsSccAlgo};
use ce_em_scc::EmSccAlgo;
use ce_graph::algo::SccAlgorithm;
use ce_graph::gen::{self, Dataset, PlantedScc, SyntheticSpec};
use ce_graph::EdgeListGraph;
use ce_extmem::DiskEnv;

use crate::runner::{
    bench_env, human_count, run_algo, Measurement, RunBudget, Scale, SweepTable,
};

/// Block size used by every experiment (the paper's testbed used 256 KiB on
/// 2007 disks; 8 KiB keeps counted I/Os in the paper's 10⁵–10⁶ range at our
/// graph sizes).
pub const BLOCK: usize = 8 << 10;

/// Memory budget that fits `frac · n` nodes of semi-external state — the
/// experiments' "vary memory size M" knob expressed relative to `|V|`, the
/// way the paper's 200M–600M sweep relates to its 100M-node graphs.
pub fn budget_for(frac: f64, n_nodes: u64) -> usize {
    let node_bytes = ce_semi_scc::mem_required(
        ce_semi_scc::SemiSccKind::Coloring,
        (frac * n_nodes as f64) as u64,
        &ce_extmem::IoConfig::new(BLOCK, 4 * BLOCK),
    );
    (node_bytes as usize).max(4 * BLOCK)
}

/// The INF budget: the paper gives every algorithm the same 24-hour wall;
/// we give the baselines a multiple of the slowest Ext-SCC run of the row,
/// in deterministic I/O units plus a generous wall-clock backstop.
fn inf_budget(ext_rows: &[Measurement], factor: u64) -> RunBudget {
    let max_ios = ext_rows.iter().map(|m| m.ios).max().unwrap_or(0).max(50_000);
    RunBudget::capped(max_ios * factor, Duration::from_secs(120))
}

/// Scaled Table I: the synthetic-generator parameters in paper units and in
/// this reproduction's units.
pub fn table1_text(scale: Scale) -> String {
    let n = scale.pick(30_000u32, 150_000u32);
    let mut out = String::new();
    out.push_str(&format!(
        "Table I (scaled to |V| = {}; paper defaults at |V| = 100M in parentheses)\n",
        human_count(n as u64)
    ));
    out.push_str(&format!("  {:<26} {:<22} {}\n", "parameter", "range", "default"));
    let rows: Vec<(String, String, String)> = vec![
        (
            "size of |V|".into(),
            format!("{}..{} (25M..200M)", human_count(n as u64 / 4), human_count(n as u64 * 2)),
            format!("{} (100M)", human_count(n as u64)),
        ),
        ("average degree D".into(), "2..6 (2..6)".into(), "4 (4)".into()),
        (
            "memory size M".into(),
            "0.3|V|..0.9|V| (200M..600M)".into(),
            "0.5|V| (400M)".into(),
        ),
        (
            "massive-SCC size".into(),
            format!(
                "{}..{} (200K..600K)",
                (200_000.0 * n as f64 / 1e8) as u32,
                (600_000.0 * n as f64 / 1e8) as u32
            ),
            format!("{} (400K)", (400_000.0 * n as f64 / 1e8) as u32),
        ),
        (
            "large-SCC size".into(),
            format!(
                "{}..{} (4K..12K)",
                (4_000.0 * n as f64 / 1e8).max(2.0) as u32,
                (12_000.0 * n as f64 / 1e8).max(2.0) as u32
            ),
            format!("{} (8K)", (8_000.0 * n as f64 / 1e8).max(2.0) as u32),
        ),
        ("small-SCC size".into(), "20..60 (20..60)".into(), "40 (40)".into()),
        ("number of massive SCCs".into(), "1 (1)".into(), "1 (1)".into()),
        ("number of large SCCs".into(), "30..70 (30..70)".into(), "50 (50)".into()),
        (
            "number of small SCCs".into(),
            format!("{}..{} (6K..14K)", 6 * n / 100_000 * 10, 14 * n / 100_000 * 10),
            format!("{} (10K)", n / 10_000),
        ),
    ];
    for (a, b, c) in rows {
        out.push_str(&format!("  {a:<26} {b:<22} {c}\n"));
    }
    out
}

/// Standard algorithm columns of Figures 6–9, labelled by the trait's
/// `name()` so tables cannot drift from the registry. The first
/// `n_reference` entries are the Ext-SCC variants: they run without limits
/// and their most expensive run defines the row's INF budget for the
/// remaining (baseline) columns.
struct FigureAlgos {
    algos: Vec<Box<dyn SccAlgorithm>>,
    n_reference: usize,
}

fn figure_algos(dfs_mode: DfsMode) -> FigureAlgos {
    let reference: Vec<Box<dyn SccAlgorithm>> =
        vec![Box::new(ExtSccAlgo::optimized()), Box::new(ExtSccAlgo::baseline())];
    let n_reference = reference.len();
    let mut algos = reference;
    algos.push(Box::new(DfsSccAlgo::new(dfs_mode)));
    algos.push(Box::new(EmSccAlgo::new()));
    FigureAlgos { algos, n_reference }
}

/// One x-axis point of a figure: its label, environment (carrying the row's
/// memory budget) and workload.
struct Point {
    x: String,
    env: DiskEnv,
    g: EdgeListGraph,
}

/// Runs a whole figure. The reference algorithms run first on every point;
/// the baselines then get one **fixed per-figure budget** — a multiple of
/// the most expensive reference run — the counted-I/O analogue of the paper
/// giving every algorithm the same 24-hour wall.
fn run_figure(
    title: impl Into<String>,
    x_label: impl Into<String>,
    points: Vec<Point>,
    dfs_mode: DfsMode,
) -> SweepTable {
    let fa = figure_algos(dfs_mode);
    let mut table = SweepTable::for_algos(title, x_label, &fa.algos);
    let (reference, budgeted) = fa.algos.split_at(fa.n_reference);
    let mut ref_rows: Vec<Vec<Measurement>> = Vec::with_capacity(points.len());
    for p in &points {
        ref_rows.push(
            reference
                .iter()
                .map(|a| run_algo(&p.env, &p.g, a.as_ref(), &RunBudget::unlimited()))
                .collect(),
        );
    }
    let all: Vec<Measurement> = ref_rows.iter().flat_map(|r| r.iter().cloned()).collect();
    let budget = inf_budget(&all, 6);
    for (p, mut row) in points.into_iter().zip(ref_rows) {
        for a in budgeted {
            row.push(run_algo(&p.env, &p.g, a.as_ref(), &budget));
        }
        table.push_row(p.x, row);
    }
    table
}

/// Figure 6 — WEBSPAM substitute, vary the fraction of edges (20%..100%)
/// under a fixed memory budget of 0.5·|V| node-state.
pub fn fig6(scale: Scale) -> SweepTable {
    let n = scale.pick(24_000u32, 120_000u32);
    let deg = 8.0;
    let mut points = Vec::new();
    for pct in [20u32, 40, 60, 80, 100] {
        let env = bench_env(BLOCK, budget_for(0.5, n as u64));
        let full = gen::web_like(&env, n, deg, 4207).expect("gen");
        let g = gen::edge_fraction(&env, &full, pct as f64 / 100.0, 99).expect("fraction");
        points.push(Point { x: format!("{pct}"), env, g });
    }
    run_figure(
        format!(
            "Fig. 6 — web-like graph (|V| = {}, avg degree {deg}), vary edge %; M = 0.5|V|",
            human_count(n as u64)
        ),
        "edges %",
        points,
        DfsMode::Naive,
    )
}

/// Figure 7 — WEBSPAM substitute, vary the memory budget (the paper's
/// 400M→1G sweep; expressed as the fraction of |V| whose semi-external state
/// fits). The last point exceeds |V| — like the paper's 1G point, the
/// semi-external algorithm runs directly and contraction is skipped.
pub fn fig7(scale: Scale) -> SweepTable {
    let n = scale.pick(24_000u32, 120_000u32);
    let deg = 8.0;
    let mut points = Vec::new();
    for frac in [0.45, 0.6, 0.75, 0.9, 1.1] {
        let env = bench_env(BLOCK, budget_for(frac, n as u64));
        let g = gen::web_like(&env, n, deg, 4207).expect("gen");
        points.push(Point { x: format!("{frac:.2}"), env, g });
    }
    run_figure(
        format!(
            "Fig. 7 — web-like graph (|V| = {}, avg degree {deg}), vary memory",
            human_count(n as u64)
        ),
        "M / |V|",
        points,
        DfsMode::Naive,
    )
}

/// Figure 8 — Table-I synthetic datasets, vary the memory budget
/// (panels (a,b) = Massive, (c,d) = Large, (e,f) = Small).
pub fn fig8(scale: Scale, dataset: Dataset) -> SweepTable {
    let n = scale.pick(30_000u32, 150_000u32);
    let mut points = Vec::new();
    for frac in [0.3, 0.45, 0.6, 0.75, 0.9] {
        let env = bench_env(BLOCK, budget_for(frac, n as u64));
        let spec = SyntheticSpec::table1(dataset, n, 4.0, 88);
        let g = gen::planted_scc_graph(&env, &spec).expect("gen");
        points.push(Point { x: format!("{frac:.2}"), env, g });
    }
    run_figure(
        format!(
            "Fig. 8 ({}) — {} dataset (|V| = {}, D = 4), vary memory",
            match dataset {
                Dataset::Massive => "a,b",
                Dataset::Large => "c,d",
                Dataset::Small => "e,f",
            },
            dataset.name(),
            human_count(n as u64)
        ),
        "M / |V|",
        points,
        DfsMode::Naive,
    )
}

/// The x-axis of Figure 9.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fig9Axis {
    /// (a,b) — vary `|V|`.
    Nodes,
    /// (c,d) — vary the average degree `D`.
    Degree,
    /// (e,f) — vary the planted SCC size.
    SccSize,
    /// (g,h) — vary the number of planted SCCs.
    SccCount,
}

impl Fig9Axis {
    /// Parses a CLI token.
    pub fn parse(s: &str) -> Option<Fig9Axis> {
        match s {
            "nodes" => Some(Fig9Axis::Nodes),
            "degree" => Some(Fig9Axis::Degree),
            "scc-size" => Some(Fig9Axis::SccSize),
            "scc-count" => Some(Fig9Axis::SccCount),
            _ => None,
        }
    }

    /// All panels in paper order.
    pub const ALL: [Fig9Axis; 4] = [
        Fig9Axis::Nodes,
        Fig9Axis::Degree,
        Fig9Axis::SccSize,
        Fig9Axis::SccCount,
    ];
}

/// Figure 9 — the Large-SCC dataset, varying one generator parameter per
/// panel pair. Memory is fixed at 0.5·|V| state.
pub fn fig9(scale: Scale, axis: Fig9Axis) -> SweepTable {
    let base_n = scale.pick(30_000u32, 120_000u32);
    // Paper defaults: 50 large SCCs of 8K nodes at |V| = 100M. Scaled sizes.
    let scc_size = |n: u32, paper: f64| ((paper * n as f64 / 1e8) as u32).max(2);
    let (title, points): (String, Vec<(String, SyntheticSpec)>) = match axis {
        Fig9Axis::Nodes => (
            "Fig. 9(a,b) — vary |V| (Large-SCC, D = 4, M = 0.5|V|)".to_string(),
            [base_n / 4, base_n / 2, base_n, base_n * 3 / 2, base_n * 2]
                .iter()
                .map(|&n| {
                    (
                        human_count(n as u64),
                        SyntheticSpec::table1(Dataset::Large, n, 4.0, 88),
                    )
                })
                .collect(),
        ),
        Fig9Axis::Degree => (
            "Fig. 9(c,d) — vary average degree (Large-SCC, M = 0.5|V|)".to_string(),
            [2.0, 3.0, 4.0, 5.0, 6.0]
                .iter()
                .map(|&d| {
                    (
                        format!("{d}"),
                        SyntheticSpec::table1(Dataset::Large, base_n, d, 88),
                    )
                })
                .collect(),
        ),
        Fig9Axis::SccSize => (
            "Fig. 9(e,f) — vary SCC size (50 SCCs, D = 4, M = 0.5|V|)".to_string(),
            [4_000.0, 6_000.0, 8_000.0, 10_000.0, 12_000.0]
                .iter()
                .map(|&paper| {
                    let size = scc_size(base_n, paper);
                    let mut spec = SyntheticSpec::table1(Dataset::Large, base_n, 4.0, 88);
                    spec.planted = vec![PlantedScc { count: 50, size }];
                    (format!("{size}"), spec)
                })
                .collect(),
        ),
        Fig9Axis::SccCount => (
            "Fig. 9(g,h) — vary SCC count (D = 4, M = 0.5|V|)".to_string(),
            [30u32, 40, 50, 60, 70]
                .iter()
                .map(|&count| {
                    let size = scc_size(base_n, 8_000.0);
                    let mut spec = SyntheticSpec::table1(Dataset::Large, base_n, 4.0, 88);
                    spec.planted = vec![PlantedScc { count, size }];
                    (format!("{count}"), spec)
                })
                .collect(),
        ),
    };
    let mut pts = Vec::new();
    for (x, spec) in points {
        let env = bench_env(BLOCK, budget_for(0.5, spec.n_nodes as u64));
        let g = gen::planted_scc_graph(&env, &spec).expect("gen");
        pts.push(Point { x, env, g });
    }
    run_figure(title, axis_label(axis), pts, DfsMode::Naive)
}

fn axis_label(axis: Fig9Axis) -> &'static str {
    match axis {
        Fig9Axis::Nodes => "|V|",
        Fig9Axis::Degree => "avg degree",
        Fig9Axis::SccSize => "SCC size",
        Fig9Axis::SccCount => "#SCCs",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_scales_with_fraction() {
        let half = budget_for(0.5, 100_000);
        let full = budget_for(1.0, 100_000);
        assert!(full > half);
        assert!(half >= 4 * BLOCK);
    }

    #[test]
    fn table1_mentions_all_parameters() {
        let t = table1_text(Scale::Quick);
        for needle in ["average degree", "massive-SCC", "large-SCC", "small-SCC"] {
            assert!(t.contains(needle), "missing {needle}");
        }
    }

    #[test]
    fn fig9_axis_parse() {
        assert_eq!(Fig9Axis::parse("nodes"), Some(Fig9Axis::Nodes));
        assert_eq!(Fig9Axis::parse("scc-size"), Some(Fig9Axis::SccSize));
        assert_eq!(Fig9Axis::parse("bogus"), None);
    }
}
