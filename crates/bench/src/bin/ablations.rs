//! Ablation studies for the design choices called out in `DESIGN.md` §6:
//!
//! 1. `>` operator: Definition 5.1 vs 7.1 — bypass-edge volume per level;
//! 2. Type-1/Type-2 node reductions on/off — iterations and total I/Os;
//! 3. lazy parallel-edge dedup off — the `|E_i|` blow-up it prevents;
//! 4. semi-external base case: coloring vs spanning tree;
//! 5. DFS-SCC: naive visited bitmap vs BRT notifications;
//! 6. Type-2 dictionary capacity sweep.
//!
//! `--quick` shrinks the workloads.

use std::time::Duration;

use ce_bench::figures::{budget_for, BLOCK};
use ce_bench::runner::{bench_env, human_count, run_algo, RunBudget};
use ce_bench::Scale;
use ce_core::{build_orders, get_e, get_v, ExtSccAlgo, ExtSccConfig, GetEOptions, GetVOptions, OrderKind};
use ce_dfs_scc::{DfsMode, DfsSccAlgo};
use ce_graph::gen::{self, Dataset, SyntheticSpec};
use ce_semi_scc::{semi_scc, SemiSccKind};

fn main() {
    let scale = Scale::from_args();
    let n = scale.pick(30_000u32, 120_000u32);
    let spec = SyntheticSpec::table1(Dataset::Large, n, 4.0, 88);

    println!("=== Ablation 1: `>` operator (one contraction level, Large-SCC |V|={}) ===", human_count(n as u64));
    {
        let env = bench_env(BLOCK, budget_for(0.5, n as u64));
        let g = gen::planted_scc_graph(&env, &spec).expect("gen");
        let orders = build_orders(&env, g.edges(), true).expect("orders");
        for (name, order) in [("Definition 5.1", OrderKind::Degree), ("Definition 7.1", OrderKind::DegreeProduct)] {
            let (cover, _) = get_v(
                &env,
                &orders,
                &GetVOptions {
                    order,
                    type1: false,
                    type2_capacity: 0,
                },
            )
            .expect("get_v");
            let ge = get_e(&env, &orders, &cover, &GetEOptions { filter_endpoints: false, drop_self_loops: true })
                .expect("get_e");
            println!(
                "  {name:<16} cover={:>8} E_pre={:>9} E_add={:>9} max bypass group={}",
                cover.len(),
                ge.n_pre,
                ge.n_add,
                ge.max_group
            );
        }
    }

    println!("\n=== Ablation 2: node reductions (full runs, M = 0.5|V|) ===");
    {
        let variants: Vec<(&str, ExtSccConfig)> = vec![
            ("none (baseline)", ExtSccConfig::baseline()),
            ("Type-1 only", {
                let mut c = ExtSccConfig::baseline();
                c.type1 = true;
                c
            }),
            ("Type-2 only", {
                let mut c = ExtSccConfig::baseline();
                c.type2_capacity = None; // derived capacity
                c
            }),
            ("Type-1+2+Def7.1 (Op)", ExtSccConfig::optimized()),
        ];
        for (name, cfg) in variants {
            let env = bench_env(BLOCK, budget_for(0.5, n as u64));
            let g = gen::planted_scc_graph(&env, &spec).expect("gen");
            let m = run_algo(&env, &g, &ExtSccAlgo::with_config("x", cfg), &RunBudget::unlimited());
            println!(
                "  {name:<22} iters={:>3} I/Os={:>9} time={:>8.2?}",
                m.iterations.unwrap_or(0),
                m.ios,
                m.wall
            );
        }
    }

    println!("\n=== Ablation 3: parallel-edge dedup (|E_i| trajectory, 8 levels) ===");
    {
        for (name, lazy) in [("dedup on ", true), ("dedup off", false)] {
            let env = bench_env(BLOCK, budget_for(0.3, n as u64));
            let g = gen::planted_scc_graph(&env, &spec).expect("gen");
            let mut edges = g.edges().clone();
            let mut sizes: Vec<String> = vec![human_count(edges.len())];
            for _ in 0..8 {
                let orders = build_orders(&env, &edges, lazy).expect("orders");
                let (cover, _) = get_v(&env, &orders, &GetVOptions::default()).expect("get_v");
                if cover.len() >= orders.n_edges {
                    break;
                }
                let ge = get_e(
                    &env,
                    &orders,
                    &cover,
                    &GetEOptions {
                        filter_endpoints: false,
                        drop_self_loops: true,
                    },
                )
                .expect("get_e");
                edges = ge.edges;
                sizes.push(human_count(edges.len()));
            }
            println!("  {name}: |E_i| = {}", sizes.join(" -> "));
        }
    }

    println!("\n=== Ablation 4: semi-external base case (coloring vs sptree) ===");
    {
        // Contract once to get a realistic base-case graph, then run both.
        let env = bench_env(BLOCK, budget_for(0.5, n as u64));
        let g = gen::planted_scc_graph(&env, &spec).expect("gen");
        let orders = build_orders(&env, g.edges(), true).expect("orders");
        let (cover, _) = get_v(
            &env,
            &orders,
            &GetVOptions {
                order: OrderKind::DegreeProduct,
                type1: true,
                type2_capacity: 4096,
            },
        )
        .expect("get_v");
        let ge = get_e(
            &env,
            &orders,
            &cover,
            &GetEOptions {
                filter_endpoints: true,
                drop_self_loops: true,
            },
        )
        .expect("get_e");
        let nodes: Vec<u32> = cover.read_all().expect("nodes");
        for kind in [SemiSccKind::Coloring, SemiSccKind::SpanningTree] {
            let before = env.stats().snapshot();
            let t = std::time::Instant::now();
            let (_, rep) = semi_scc(&env, kind, &ge.edges, &nodes).expect("semi");
            let d = env.stats().snapshot().since(&before);
            println!(
                "  {:<9} edge passes={:>4} sccs={:>7} I/Os={:>8} time={:>8.2?}",
                kind.name(),
                rep.edge_passes,
                rep.n_sccs,
                d.total_ios(),
                t.elapsed()
            );
        }
    }

    println!("\n=== Ablation 5: DFS-SCC naive vs BRT (small graph) ===");
    {
        let dn = scale.pick(3_000u32, 10_000u32);
        let env = bench_env(BLOCK, budget_for(0.5, dn as u64));
        let g = gen::web_like(&env, dn, 4.0, 17).expect("gen");
        for mode in [DfsMode::Naive, DfsMode::Brt] {
            let m = run_algo(
                &env,
                &g,
                &DfsSccAlgo::new(mode),
                &RunBudget::capped(50_000_000, Duration::from_secs(180)),
            );
            println!(
                "  {:<6} outcome={:?} I/Os={:>9} random={:>9} time={:>8.2?}",
                mode.name(),
                m.outcome,
                m.ios,
                m.rand_ios,
                m.wall
            );
        }
    }

    println!("\n=== Ablation 6: Type-2 dictionary capacity sweep ===");
    {
        for cap in [0usize, 256, 4096, 65536] {
            let env = bench_env(BLOCK, budget_for(0.5, n as u64));
            let g = gen::planted_scc_graph(&env, &spec).expect("gen");
            let mut cfg = ExtSccConfig::optimized();
            cfg.type2_capacity = Some(cap);
            let m = run_algo(&env, &g, &ExtSccAlgo::with_config("x", cfg), &RunBudget::unlimited());
            println!(
                "  capacity {cap:>6}: iters={:>3} I/Os={:>9} time={:>8.2?}",
                m.iterations.unwrap_or(0),
                m.ios,
                m.wall
            );
        }
    }
}
