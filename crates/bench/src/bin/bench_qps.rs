//! Query-throughput emitter for the concurrent read path: builds one
//! smoke-scale index, fans deterministic point-query workloads across
//! cloned [`SccIndexReader`] handles, and writes the thread × cache QPS
//! grid to `BENCH_<tag>.json`.
//!
//! The grid is {1, 4} serving threads × {cold, warm} pool state:
//!
//! * **cold** — every repetition opens a fresh reader, so the shared pool
//!   starts empty and the cell pays its physical misses;
//! * **warm** — one reader is opened, primed by the discarded warmup
//!   pass, and reused across repetitions: steady-state serving, zero
//!   physical reads.
//!
//! Per-query *logical* I/O is deterministic (one block read per point
//! query); only wall time is noisy, so each cell runs one discarded
//! warmup pass and `--reps` measured repetitions, reporting the
//! **median** QPS. The header records `host_cpus`
//! (`std::thread::available_parallelism`) because multi-thread scaling is
//! a property of the host, not the code: the committed trajectory file
//! from a 1-CPU container legitimately shows no 4-thread speedup, and
//! consumers (the `tests/qps_gate.rs` gate, CI's `--check-scaling`) gate
//! their scaling assertions on that recorded value.
//!
//! ```text
//! cargo run --release -p ce-bench --bin bench_qps -- --tag qps [--out DIR]
//!     [--reps K] [--nodes N] [--queries K] [--cache-blocks N]
//!     [--check-scaling X]
//! ```
//!
//! `--check-scaling X` exits non-zero if warm 4-thread QPS is below
//! `X ×` warm 1-thread QPS — skipped (with a note) when the host has
//! fewer than 4 CPUs, where the ratio measures the scheduler, not the
//! read path.

use std::fmt::Write as _;
use std::io::Write as _;
use std::time::{Duration, Instant};

use ce_extmem::{DiskEnv, IoConfig};
use ce_graph::{SccIndex, SccIndexReader};

/// The logical block size the index is built and served with. 4 KiB keeps
/// the label section at a few dozen pages for the default `--nodes`, so
/// both the cold misses and the warm hit path are exercised.
const BLOCK: usize = 4096;

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

const USAGE: &str = "usage: bench_qps --tag <tag> [--out <dir>] [--reps <k>] [--nodes <n>]\n\
       [--queries <k>] [--cache-blocks <n>] [--check-scaling <x>]";

/// Block size of the filesystem holding `dir` — context for interpreting
/// the wall-clock numbers, same as `bench_json`'s header.
fn host_block_size(dir: &str) -> u64 {
    #[cfg(unix)]
    {
        use std::os::unix::fs::MetadataExt;
        if let Ok(md) = std::fs::metadata(dir) {
            return md.blksize();
        }
    }
    let _ = dir;
    4096
}

fn xorshift(x: &mut u64) -> u64 {
    *x ^= *x << 13;
    *x ^= *x >> 7;
    *x ^= *x << 17;
    *x
}

/// Runs `queries` point lookups split evenly across `threads` cloned
/// handles and returns the wall time. Thread `t` derives its node stream
/// from `seed ^ (GOLDEN + t)`, so a (threads, seed) pair fully determines
/// the workload — reps are identical by construction.
fn run_cell(reader: &SccIndexReader, threads: usize, queries: u64, seed: u64) -> Duration {
    let n_nodes = u32::try_from(reader.n_nodes()).unwrap_or(u32::MAX);
    let per = queries.div_ceil(threads as u64);
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads as u64 {
            let handle = reader.clone();
            s.spawn(move || {
                let mine = per.min(queries.saturating_sub(t * per));
                let mut x = seed ^ (0x9e37_79b9_7f4a_7c15 + t);
                for _ in 0..mine {
                    let u = (xorshift(&mut x) % n_nodes as u64) as u32;
                    handle.component_of(u).expect("point query failed");
                }
            });
        }
    });
    t0.elapsed()
}

fn main() -> std::io::Result<()> {
    let mut tag = String::new();
    let mut out_dir = String::from(".");
    let mut reps = 3usize;
    let mut nodes = 60_000u32;
    let mut queries = 40_000u64;
    let mut cache_blocks = 256usize;
    let mut check_scaling: Option<f64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut num = |name: &str| {
            args.next().and_then(|v| v.parse::<f64>().ok()).unwrap_or_else(|| {
                eprintln!("{name} needs a number");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--tag" => tag = args.next().unwrap_or_default(),
            "--out" => out_dir = args.next().unwrap_or_default(),
            "--reps" => reps = (num("--reps") as usize).max(1),
            "--nodes" => nodes = (num("--nodes") as u32).max(16),
            "--queries" => queries = (num("--queries") as u64).max(1),
            "--cache-blocks" => cache_blocks = num("--cache-blocks") as usize,
            "--check-scaling" => check_scaling = Some(num("--check-scaling")),
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(());
            }
            other => {
                eprintln!("unknown argument {other:?}; see --help");
                std::process::exit(2);
            }
        }
    }
    if tag.is_empty() || out_dir.is_empty() {
        eprintln!("{USAGE}");
        std::process::exit(2);
    }

    let host_cpus = ce_bench::trajectory::detect_host_cpus();

    // One index serves every cell: build it once in a scratch env that
    // lives for the whole run.
    let env = DiskEnv::new_temp(IoConfig::new(BLOCK, 16 << 20))?;
    let path = env.root().join("qps.sccidx");
    let reps_built = ce_harness::build_query_index(&env, &path, nodes, 42)?;
    println!(
        "index: {nodes} nodes, {} components, block {BLOCK} B, pool {cache_blocks} blocks",
        reps_built.iter().collect::<std::collections::HashSet<_>>().len()
    );

    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"tag\": \"{}\",", json_escape(&tag)).unwrap();
    writeln!(json, "  \"kind\": \"qps\",").unwrap();
    writeln!(json, "  \"block_size\": {BLOCK},").unwrap();
    writeln!(json, "  \"host_block_size\": {},", host_block_size(&out_dir)).unwrap();
    writeln!(json, "  \"host_cpus\": {host_cpus},").unwrap();
    writeln!(json, "  \"n_nodes\": {nodes},").unwrap();
    writeln!(json, "  \"n_queries\": {queries},").unwrap();
    writeln!(json, "  \"cache_blocks\": {cache_blocks},").unwrap();
    writeln!(json, "  \"reps\": {reps},").unwrap();
    writeln!(json, "  \"cells\": [").unwrap();

    let grid: Vec<(usize, &str)> =
        vec![(1, "cold"), (1, "warm"), (4, "cold"), (4, "warm")];
    let mut warm_qps = std::collections::HashMap::<usize, f64>::new();
    for (ci, &(threads, cache)) in grid.iter().enumerate() {
        // Warm cells share one pre-primed reader; cold cells reopen per
        // repetition so the pool starts empty every time. The warmup pass
        // is discarded either way.
        let shared = SccIndex::open_shared(&path, cache_blocks)?;
        run_cell(&shared, threads, queries, 42);
        let mut walls = Vec::with_capacity(reps);
        for _ in 0..reps {
            let wall = if cache == "warm" {
                run_cell(&shared, threads, queries, 42)
            } else {
                let fresh = SccIndex::open_shared(&path, cache_blocks)?;
                run_cell(&fresh, threads, queries, 42)
            };
            walls.push(wall);
        }
        walls.sort();
        let wall = walls[walls.len() / 2];
        let qps = queries as f64 / wall.as_secs_f64().max(1e-9);
        if cache == "warm" {
            warm_qps.insert(threads, qps);
        }
        println!(
            "  {threads} thread(s), {cache:<4}  {qps:>12.0} qps  ({:>8.2?} median wall)",
            wall
        );
        writeln!(json, "    {{").unwrap();
        writeln!(json, "      \"threads\": {threads},").unwrap();
        writeln!(json, "      \"cache\": \"{cache}\",").unwrap();
        writeln!(json, "      \"qps\": {qps:.1},").unwrap();
        writeln!(json, "      \"wall_ms\": {:.3}", wall.as_secs_f64() * 1e3).unwrap();
        write!(json, "    }}").unwrap();
        writeln!(json, "{}", if ci + 1 < grid.len() { "," } else { "" }).unwrap();
    }
    writeln!(json, "  ]").unwrap();
    writeln!(json, "}}").unwrap();

    std::fs::create_dir_all(&out_dir)?;
    let out = std::path::Path::new(&out_dir).join(format!("BENCH_{tag}.json"));
    let mut f = std::fs::File::create(&out)?;
    f.write_all(json.as_bytes())?;
    println!("wrote {}", out.display());

    if let Some(factor) = check_scaling {
        let (one, four) = (warm_qps[&1], warm_qps[&4]);
        if host_cpus < 4 {
            println!(
                "scaling check skipped: host has {host_cpus} CPU(s); \
                 4-thread/1-thread warm ratio {:.2}x is a scheduler artifact",
                four / one
            );
        } else if four < factor * one {
            eprintln!(
                "SCALING VIOLATION: warm 4-thread {four:.0} qps < \
                 {factor}x warm 1-thread {one:.0} qps"
            );
            std::process::exit(1);
        } else {
            println!(
                "scaling ok: warm 4-thread {four:.0} qps >= {factor}x \
                 warm 1-thread {one:.0} qps ({:.2}x)",
                four / one
            );
        }
    }
    Ok(())
}
