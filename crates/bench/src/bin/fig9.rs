//! Reproduces Figure 9 (Large-SCC dataset, one generator axis per panel).
//! `--axis nodes|degree|scc-size|scc-count` selects a panel pair; default all.

use ce_bench::figures::{fig9, Fig9Axis};
use ce_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    let args: Vec<String> = std::env::args().collect();
    let axes: Vec<Fig9Axis> = match args.iter().position(|a| a == "--axis") {
        Some(i) => {
            let name = args.get(i + 1).map(String::as_str).unwrap_or("");
            match Fig9Axis::parse(name) {
                Some(a) => vec![a],
                None => {
                    eprintln!("unknown axis {name:?}; use nodes|degree|scc-size|scc-count");
                    std::process::exit(2);
                }
            }
        }
        None => Fig9Axis::ALL.to_vec(),
    };
    for a in axes {
        println!("{}", fig9(scale, a));
    }
}
