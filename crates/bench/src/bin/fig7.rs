//! Reproduces Figure 7 (vary memory on the WEBSPAM substitute).

use ce_bench::figures::fig7;
use ce_bench::Scale;

fn main() {
    println!("{}", fig7(Scale::from_args()));
}
