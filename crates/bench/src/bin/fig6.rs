//! Reproduces Figure 6 (vary edge fraction on the WEBSPAM substitute).
//! `--quick` shrinks the workload for smoke runs.

use ce_bench::figures::fig6;
use ce_bench::Scale;

fn main() {
    println!("{}", fig6(Scale::from_args()));
}
