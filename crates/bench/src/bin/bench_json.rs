//! Bench trajectory emitter: runs every engine on a fixed smoke-scale
//! workload set and writes the per-engine logical/physical I/O counts and
//! wall times to `BENCH_<tag>.json`.
//!
//! The workloads are `ce_harness::smoke_workloads()` — the conformance
//! matrix's own smoke generators — under its tight memory regime
//! (`ce_harness::tight_budget`, contraction genuinely runs), so the
//! logical-I/O column is deterministic and measures the exact scenario the
//! golden pins: two runs of the same binary produce identical counts, and
//! the JSON files committed per PR form a trajectory of the repository's
//! I/O efficiency over time (`BENCH_pr4-baseline.json` vs `BENCH_pr5.json`
//! records the streaming-pipeline win, for example).
//!
//! Wall time is noisy where logical I/Os are not: each cell runs one
//! discarded warmup pass (page cache, allocator pools) and then `--reps`
//! measured repetitions, reporting the **median** wall_ms. Logical counts
//! are taken from the final repetition (identical across repetitions by
//! construction).
//!
//! ```text
//! cargo run --release -p ce-bench --bin bench_json -- --tag smoke [--out DIR] [--reps K]
//!     [--phases]
//! cargo run --release -p ce-bench --bin bench_json -- --compare BASE.json CAND.json \
//!     [--tolerance X]
//! ```
//!
//! The header records the run geometry (`block_size`, `reps`) plus the
//! *host* filesystem's block size, so a trajectory file carries enough
//! context to interpret its wall times. `--phases` runs one extra traced
//! repetition per cell (an in-memory span sink; logical counters are
//! unaffected) and emits a `"phases"` object attributing the cell's
//! logical I/Os to span names — contraction iterations, Get-V/Get-E,
//! sort passes and friends.
//!
//! `--compare` exits non-zero if any `ok` baseline cell is missing, no
//! longer `ok`, or slower than `tolerance ×` its baseline wall time — the
//! CI guard against wall-clock regressions sneaking past the I/O model.

use std::fmt::Write as _;
use std::io::Write as _;
use std::time::Duration;

use ce_bench::runner::{run_algo, Outcome, RunBudget};
use ce_extmem::{DiskEnv, IoConfig};
use ce_graph::algo::SccAlgorithm;
use ce_harness::{smoke_workloads as workloads, tight_budget, MATRIX_BLOCK as BLOCK};

/// The external engines of the conformance registry — derived from
/// `ce_harness::registry()` so a newly registered engine shows up in the
/// trajectory automatically; only the in-memory oracles are dropped (they
/// run no external I/O worth tracking).
fn engines() -> Vec<Box<dyn SccAlgorithm>> {
    ce_harness::registry()
        .into_iter()
        .filter(|a| !matches!(a.name(), "Tarjan" | "Kosaraju"))
        .collect()
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

const USAGE: &str = "usage: bench_json --tag <tag> [--out <dir>] [--reps <k>] [--phases]\n\
       bench_json --compare <baseline.json> <candidate.json> [--tolerance <x>]";

/// Block size of the filesystem holding `dir` (what the OS actually
/// transfers per I/O on this host) — distinct from the model's `block_size`,
/// which prices the logical counters.
fn host_block_size(dir: &str) -> u64 {
    #[cfg(unix)]
    {
        use std::os::unix::fs::MetadataExt;
        if let Ok(md) = std::fs::metadata(dir) {
            return md.blksize();
        }
    }
    let _ = dir;
    4096
}

fn main() -> std::io::Result<()> {
    let mut tag = String::new();
    let mut out_dir = String::from(".");
    let mut reps = 3usize;
    let mut phases = false;
    let mut compare: Option<(String, String)> = None;
    let mut tolerance = 3.0f64;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--tag" => tag = args.next().unwrap_or_default(),
            "--out" => out_dir = args.next().unwrap_or_default(),
            "--reps" => {
                reps = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&k| k >= 1)
                    .unwrap_or_else(|| {
                        eprintln!("--reps needs a positive integer");
                        std::process::exit(2);
                    })
            }
            "--phases" => phases = true,
            "--compare" => {
                let base = args.next().unwrap_or_default();
                let cand = args.next().unwrap_or_default();
                compare = Some((base, cand));
            }
            "--tolerance" => {
                tolerance = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&x| x > 0.0)
                    .unwrap_or_else(|| {
                        eprintln!("--tolerance needs a positive number");
                        std::process::exit(2);
                    })
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(());
            }
            other => {
                eprintln!("unknown argument {other:?}; see --help");
                std::process::exit(2);
            }
        }
    }

    if let Some((base_path, cand_path)) = compare {
        return run_compare(&base_path, &cand_path, tolerance);
    }
    if tag.is_empty() || out_dir.is_empty() {
        eprintln!("{USAGE}");
        std::process::exit(2);
    }

    let budget = RunBudget::capped(50_000_000, Duration::from_secs(600));
    std::fs::create_dir_all(&out_dir)?;
    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"tag\": \"{}\",", json_escape(&tag)).unwrap();
    writeln!(json, "  \"block_size\": {BLOCK},").unwrap();
    writeln!(json, "  \"host_block_size\": {},", host_block_size(&out_dir)).unwrap();
    writeln!(json, "  \"budget_regime\": \"tight\",").unwrap();
    writeln!(json, "  \"reps\": {reps},").unwrap();
    writeln!(json, "  \"workloads\": [").unwrap();

    let workloads = workloads();
    for (wi, (family, n, build)) in workloads.iter().enumerate() {
        let mem = tight_budget(*n);
        println!("== {family} ({n} nodes, {mem} B budget) ==");
        writeln!(json, "    {{").unwrap();
        writeln!(json, "      \"family\": \"{family}\",").unwrap();
        writeln!(json, "      \"n_nodes\": {n},").unwrap();
        writeln!(json, "      \"mem_budget\": {mem},").unwrap();
        writeln!(json, "      \"engines\": [").unwrap();
        let engines = engines();
        for (ei, algo) in engines.iter().enumerate() {
            // One discarded warmup run, then `reps` measured repetitions;
            // wall_ms is the median, the deterministic counters come from
            // the final repetition. Each repetition gets a fresh env so no
            // pager state carries over.
            let mut walls = Vec::with_capacity(reps);
            let mut last = None;
            for rep in 0..=reps {
                let env = DiskEnv::new_temp(IoConfig::new(BLOCK, mem))?;
                let g = build(&env)?;
                let phys0 = env.phys();
                let m = run_algo(&env, &g, algo.as_ref(), &budget);
                let phys = env.phys().since(&phys0);
                if rep > 0 {
                    walls.push(m.wall);
                    last = Some((m, phys));
                }
            }
            let (m, phys) = last.expect("reps >= 1");
            walls.sort();
            let wall = walls[walls.len() / 2];
            // `--phases`: one extra traced repetition outside the measured
            // set (the sink allocates, so its wall time is not comparable),
            // attributing the cell's logical I/Os to span names via each
            // span's self-delta.
            let phases_json = if phases {
                let env = DiskEnv::new_temp(IoConfig::new(BLOCK, mem))?;
                let g = build(&env)?;
                let sink = std::rc::Rc::new(ce_obs::MemSink::new());
                let guard = ce_obs::install(sink.clone());
                let _ = run_algo(&env, &g, algo.as_ref(), &budget);
                drop(guard);
                let per = ce_obs::MemSink::self_by_name(&sink.take(), "ios");
                let mut s = String::from("{");
                for (i, (name, ios)) in per.iter().enumerate() {
                    let sep = if i > 0 { ", " } else { "" };
                    write!(s, "{sep}\"{}\": {ios}", json_escape(name)).unwrap();
                }
                s.push('}');
                Some(s)
            } else {
                None
            };
            let (outcome, n_sccs) = match &m.outcome {
                Outcome::Ok(n) => ("ok", n.to_string()),
                Outcome::Inf => ("inf", "null".to_string()),
                Outcome::Dnf(_) => ("dnf", "null".to_string()),
            };
            println!(
                "  {:<12} {:>4}  logical {:>8}  physical {:>8}  {:>9.2?}",
                m.algo,
                outcome,
                m.ios,
                phys.transfers(),
                wall
            );
            writeln!(json, "        {{").unwrap();
            writeln!(json, "          \"name\": \"{}\",", json_escape(m.algo)).unwrap();
            writeln!(json, "          \"outcome\": \"{outcome}\",").unwrap();
            writeln!(json, "          \"n_sccs\": {n_sccs},").unwrap();
            writeln!(json, "          \"logical_ios\": {},", m.ios).unwrap();
            writeln!(json, "          \"logical_rand_ios\": {},", m.rand_ios).unwrap();
            writeln!(json, "          \"physical_transfers\": {},", phys.transfers()).unwrap();
            match &phases_json {
                Some(p) => {
                    writeln!(json, "          \"wall_ms\": {:.3},", wall.as_secs_f64() * 1e3)
                        .unwrap();
                    writeln!(json, "          \"phases\": {p}").unwrap();
                }
                None => {
                    writeln!(json, "          \"wall_ms\": {:.3}", wall.as_secs_f64() * 1e3)
                        .unwrap()
                }
            }
            write!(json, "        }}").unwrap();
            writeln!(json, "{}", if ei + 1 < engines.len() { "," } else { "" }).unwrap();
        }
        writeln!(json, "      ]").unwrap();
        write!(json, "    }}").unwrap();
        writeln!(json, "{}", if wi + 1 < workloads.len() { "," } else { "" }).unwrap();
    }
    writeln!(json, "  ]").unwrap();
    writeln!(json, "}}").unwrap();

    let path = std::path::Path::new(&out_dir).join(format!("BENCH_{tag}.json"));
    let mut f = std::fs::File::create(&path)?;
    f.write_all(json.as_bytes())?;
    println!("wrote {}", path.display());
    Ok(())
}

/// `--compare` mode: candidate wall times must stay within `tolerance ×` the
/// baseline on every cell the baseline finished. Exits 1 on violation.
fn run_compare(base_path: &str, cand_path: &str, tolerance: f64) -> std::io::Result<()> {
    use ce_bench::trajectory::{compare_wall, parse_cells};
    let base = parse_cells(&std::fs::read_to_string(base_path)?);
    let cand = parse_cells(&std::fs::read_to_string(cand_path)?);
    if base.is_empty() || cand.is_empty() {
        eprintln!("no cells parsed from {base_path} or {cand_path}");
        std::process::exit(2);
    }
    let violations = compare_wall(&base, &cand, tolerance);
    for v in &violations {
        eprintln!("VIOLATION: {v}");
    }
    if violations.is_empty() {
        println!(
            "ok: {} cells within {tolerance}x of {base_path}",
            base.iter().filter(|c| c.outcome == "ok").count()
        );
        Ok(())
    } else {
        std::process::exit(1);
    }
}
