//! Bench trajectory emitter: runs every engine on a fixed smoke-scale
//! workload set and writes the per-engine logical/physical I/O counts and
//! wall times to `BENCH_<tag>.json`.
//!
//! The workloads are `ce_harness::smoke_workloads()` — the conformance
//! matrix's own smoke generators — under its tight memory regime
//! (`ce_harness::tight_budget`, contraction genuinely runs), so the
//! logical-I/O column is deterministic and measures the exact scenario the
//! golden pins: two runs of the same binary produce identical counts, and
//! the JSON files committed per PR form a trajectory of the repository's
//! I/O efficiency over time (`BENCH_pr4-baseline.json` vs `BENCH_pr5.json`
//! records the streaming-pipeline win, for example).
//!
//! ```text
//! cargo run --release -p ce-bench --bin bench_json -- --tag smoke [--out DIR]
//! ```

use std::fmt::Write as _;
use std::io::Write as _;
use std::time::Duration;

use ce_bench::runner::{run_algo, Outcome, RunBudget};
use ce_extmem::{DiskEnv, IoConfig};
use ce_graph::algo::SccAlgorithm;
use ce_harness::{smoke_workloads as workloads, tight_budget, MATRIX_BLOCK as BLOCK};

/// The external engines of the conformance registry — derived from
/// `ce_harness::registry()` so a newly registered engine shows up in the
/// trajectory automatically; only the in-memory oracles are dropped (they
/// run no external I/O worth tracking).
fn engines() -> Vec<Box<dyn SccAlgorithm>> {
    ce_harness::registry()
        .into_iter()
        .filter(|a| !matches!(a.name(), "Tarjan" | "Kosaraju"))
        .collect()
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

fn main() -> std::io::Result<()> {
    let mut tag = String::new();
    let mut out_dir = String::from(".");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--tag" => tag = args.next().unwrap_or_default(),
            "--out" => out_dir = args.next().unwrap_or_default(),
            "--help" | "-h" => {
                println!("usage: bench_json --tag <tag> [--out <dir>]");
                return Ok(());
            }
            other => {
                eprintln!("unknown argument {other:?}; see --help");
                std::process::exit(2);
            }
        }
    }
    if tag.is_empty() || out_dir.is_empty() {
        eprintln!("usage: bench_json --tag <tag> [--out <dir>]");
        std::process::exit(2);
    }

    let budget = RunBudget::capped(50_000_000, Duration::from_secs(600));
    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"tag\": \"{}\",", json_escape(&tag)).unwrap();
    writeln!(json, "  \"block_size\": {BLOCK},").unwrap();
    writeln!(json, "  \"budget_regime\": \"tight\",").unwrap();
    writeln!(json, "  \"workloads\": [").unwrap();

    let workloads = workloads();
    for (wi, (family, n, build)) in workloads.iter().enumerate() {
        let mem = tight_budget(*n);
        println!("== {family} ({n} nodes, {mem} B budget) ==");
        writeln!(json, "    {{").unwrap();
        writeln!(json, "      \"family\": \"{family}\",").unwrap();
        writeln!(json, "      \"n_nodes\": {n},").unwrap();
        writeln!(json, "      \"mem_budget\": {mem},").unwrap();
        writeln!(json, "      \"engines\": [").unwrap();
        let engines = engines();
        for (ei, algo) in engines.iter().enumerate() {
            let env = DiskEnv::new_temp(IoConfig::new(BLOCK, mem))?;
            let g = build(&env)?;
            let phys0 = env.phys();
            let m = run_algo(&env, &g, algo.as_ref(), &budget);
            let phys = env.phys().since(&phys0);
            let (outcome, n_sccs) = match &m.outcome {
                Outcome::Ok(n) => ("ok", *n as i64),
                Outcome::Inf => ("inf", -1),
                Outcome::Dnf(_) => ("dnf", -1),
            };
            println!(
                "  {:<12} {:>4}  logical {:>8}  physical {:>8}  {:>9.2?}",
                m.algo,
                outcome,
                m.ios,
                phys.transfers(),
                m.wall
            );
            writeln!(json, "        {{").unwrap();
            writeln!(json, "          \"name\": \"{}\",", json_escape(m.algo)).unwrap();
            writeln!(json, "          \"outcome\": \"{outcome}\",").unwrap();
            writeln!(json, "          \"n_sccs\": {n_sccs},").unwrap();
            writeln!(json, "          \"logical_ios\": {},", m.ios).unwrap();
            writeln!(json, "          \"logical_rand_ios\": {},", m.rand_ios).unwrap();
            writeln!(json, "          \"physical_transfers\": {},", phys.transfers()).unwrap();
            writeln!(json, "          \"wall_ms\": {:.3}", m.wall.as_secs_f64() * 1e3).unwrap();
            write!(json, "        }}").unwrap();
            writeln!(json, "{}", if ei + 1 < engines.len() { "," } else { "" }).unwrap();
        }
        writeln!(json, "      ]").unwrap();
        write!(json, "    }}").unwrap();
        writeln!(json, "{}", if wi + 1 < workloads.len() { "," } else { "" }).unwrap();
    }
    writeln!(json, "  ]").unwrap();
    writeln!(json, "}}").unwrap();

    std::fs::create_dir_all(&out_dir)?;
    let path = std::path::Path::new(&out_dir).join(format!("BENCH_{tag}.json"));
    let mut f = std::fs::File::create(&path)?;
    f.write_all(json.as_bytes())?;
    println!("wrote {}", path.display());
    Ok(())
}
