//! Reproduces Figure 8 (synthetic datasets, vary memory).
//! `--dataset massive|large|small` selects one panel pair; default all.

use ce_bench::figures::fig8;
use ce_bench::Scale;
use ce_graph::gen::Dataset;

fn main() {
    let scale = Scale::from_args();
    let args: Vec<String> = std::env::args().collect();
    let datasets: Vec<Dataset> = match args.iter().position(|a| a == "--dataset") {
        Some(i) => {
            let name = args.get(i + 1).map(String::as_str).unwrap_or("");
            match Dataset::ALL.iter().find(|d| d.name() == name) {
                Some(&d) => vec![d],
                None => {
                    eprintln!("unknown dataset {name:?}; use massive|large|small");
                    std::process::exit(2);
                }
            }
        }
        None => Dataset::ALL.to_vec(),
    };
    for d in datasets {
        println!("{}", fig8(scale, d));
    }
}
