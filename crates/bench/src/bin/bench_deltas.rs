//! Delta-maintenance emitter for the incremental index path: builds one
//! condensation-bearing index per workload family, drives a deterministic
//! stream of single-edge insertions/deletions through
//! [`DeltaEngine::apply`], and writes per-family update throughput and
//! I/O-per-delta to `BENCH_<tag>.json`.
//!
//! Each cell also records `rebuild_ios`: the logical I/O **floor** of
//! rebuilding the artifact from scratch for the stream's final graph —
//! writing the label file, recounting the condensation and materializing
//! the index, with the SCC computation itself done for free in memory.
//! A real rebuild pays at least this per update it wants to absorb; the
//! incremental path's `ios_per_update` staying far below it is the
//! sublinearity claim, gated by `tests/delta_gate.rs` over the committed
//! `BENCH_pr9.json`.
//!
//! The per-update *logical* I/O is deterministic (asserted identical
//! across repetitions); only wall time is noisy, so the emitter runs
//! `--reps` full fresh repetitions per family and reports the **median**
//! wall time / updates-per-second.
//!
//! ```text
//! cargo run --release -p ce-bench --bin bench_deltas -- --tag deltas
//!     [--out DIR] [--reps K] [--updates K]
//! ```

use std::fmt::Write as _;
use std::io::Write as _;
use std::time::{Duration, Instant};

use ce_extmem::{DiskEnv, IoConfig};
use ce_graph::delta::{DeltaBatch, DeltaEngine};
use ce_graph::labels::condense_counted;
use ce_graph::tarjan::tarjan_scc;
use ce_graph::{CsrGraph, Edge, EdgeListGraph, SccIndex, SccLabel};

/// The logical block size the artifacts are built and maintained with —
/// the label section spans ~20 pages at the default scale, so a
/// maintenance step accidentally rewriting it would be obvious in
/// `ios_per_update`.
const BLOCK: usize = 4096;

const USAGE: &str =
    "usage: bench_deltas --tag <tag> [--out <dir>] [--reps <k>] [--updates <k>]";

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Block size of the filesystem holding `dir` — context for interpreting
/// the wall-clock numbers, same as `bench_json`'s header.
fn host_block_size(dir: &str) -> u64 {
    #[cfg(unix)]
    {
        use std::os::unix::fs::MetadataExt;
        if let Ok(md) = std::fs::metadata(dir) {
            return md.blksize();
        }
    }
    let _ = dir;
    4096
}

fn xorshift(x: &mut u64) -> u64 {
    *x ^= *x << 13;
    *x ^= *x >> 7;
    *x ^= *x << 17;
    *x
}

/// One bench-scale workload family: a base graph plus a deterministic
/// update stream. Mirrors the ce-harness differential families in shape,
/// scaled up to real artifact sizes.
struct Family {
    name: &'static str,
    n: u64,
    base: Vec<(u32, u32)>,
    /// Percent of steps that insert (the rest delete a present edge);
    /// `grow_phase` raises it for the first 60% of the stream.
    add_bias: u64,
    grow_phase: bool,
}

fn families() -> Vec<Family> {
    // cycle-stitch: 250 disjoint 80-cycles stitched by random cross edges.
    let mut cycles = Vec::new();
    for c in 0..250u32 {
        let at = c * 80;
        for i in 0..80 {
            cycles.push((at + i, at + (i + 1) % 80));
        }
    }
    // churn: sparse random base, near-balanced add/remove mix.
    let n_churn = 20_000u64;
    let mut x = 0x5eed_0009u64;
    let churn = (0..30_000)
        .map(|_| {
            (
                (xorshift(&mut x) % n_churn) as u32,
                (xorshift(&mut x) % n_churn) as u32,
            )
        })
        .collect();
    // grow-cut: a path spine, grown with back edges then cut apart.
    let spine = (0..10_000u32).map(|i| (i, i + 1)).collect();
    vec![
        Family { name: "cycle-stitch", n: 20_000, base: cycles, add_bias: 85, grow_phase: false },
        Family { name: "churn", n: n_churn, base: churn, add_bias: 55, grow_phase: false },
        Family { name: "grow-cut", n: 20_000, base: spine, add_bias: 30, grow_phase: true },
    ]
}

/// What one family's measured stream did.
struct Cell {
    family: &'static str,
    n_nodes: u64,
    updates: u64,
    adds: u64,
    removes: u64,
    merges: u64,
    total_ios: u64,
    wall: Duration,
}

/// Builds the family's index in a fresh environment, replays the update
/// stream through one held [`DeltaEngine`], and measures the stream's
/// wall time and logical I/O. Returns the cell plus the final edge
/// multiset (for the rebuild floor).
fn run_family(fam: &Family, updates: u64, seed: u64) -> std::io::Result<(Cell, Vec<(u32, u32)>)> {
    let env = DiskEnv::new_temp(IoConfig::new(BLOCK, 16 << 20))?;
    let (g, path) = build_index(&env, fam.name, fam.n, &fam.base)?;

    let mut current = fam.base.clone();
    let mut cell = Cell {
        family: fam.name,
        n_nodes: fam.n,
        updates,
        adds: 0,
        removes: 0,
        merges: 0,
        total_ios: 0,
        wall: Duration::ZERO,
    };
    let mut eng = DeltaEngine::open(&env, &g, &path)?;
    let mut x = seed | 1;
    let before = env.stats().snapshot();
    let t0 = Instant::now();
    for step in 0..updates {
        let bias = if fam.grow_phase && step < updates * 3 / 5 { 90 } else { fam.add_bias };
        let report = if xorshift(&mut x) % 100 < bias || current.is_empty() {
            let mut u = (xorshift(&mut x) % fam.n) as u32;
            let mut v = (xorshift(&mut x) % fam.n) as u32;
            if fam.grow_phase && step < updates * 3 / 5 && u < v {
                std::mem::swap(&mut u, &mut v);
            }
            current.push((u, v));
            cell.adds += 1;
            eng.apply(&DeltaBatch::new().add(u, v))?
        } else {
            let i = xorshift(&mut x) as usize % current.len();
            let (u, v) = current.swap_remove(i);
            cell.removes += 1;
            eng.apply(&DeltaBatch::new().remove(u, v))?
        };
        cell.merges += report.merges;
    }
    cell.wall = t0.elapsed();
    cell.total_ios = env.stats().snapshot().since(&before).total_ios();
    Ok((cell, current))
}

/// Builds a condensation-bearing index for `edges` over `n` nodes and
/// returns the base graph handle plus the artifact path.
fn build_index(
    env: &DiskEnv,
    name: &str,
    n: u64,
    edges: &[(u32, u32)],
) -> std::io::Result<(EdgeListGraph, std::path::PathBuf)> {
    let es: Vec<Edge> = edges.iter().map(|&(u, v)| Edge::new(u, v)).collect();
    let f = env.file_from_slice(&format!("{name}-edges"), &es)?;
    let g = EdgeListGraph::new(f, n);
    let reps = tarjan_scc(&CsrGraph::from_edges(n, &es)).canonical_reps();
    let labs: Vec<SccLabel> = reps
        .iter()
        .enumerate()
        .map(|(i, &r)| SccLabel::new(i as u32, r))
        .collect();
    let lf = env.file_from_slice(&format!("{name}-labs"), &labs)?;
    let counted = condense_counted(env, &g, &lf)?;
    let path = env.root().join(format!("{name}.sccidx"));
    SccIndex::build(env, &path, &lf, n, Some(&counted))?;
    Ok((g, path))
}

/// The logical I/O floor of a from-scratch rebuild for `edges`: write the
/// label file, recount the condensation, materialize the artifact — with
/// the SCC computation itself done for free in memory. Any real rebuild
/// pays at least this.
fn rebuild_floor(name: &str, n: u64, edges: &[(u32, u32)]) -> std::io::Result<u64> {
    let env = DiskEnv::new_temp(IoConfig::new(BLOCK, 16 << 20))?;
    let es: Vec<Edge> = edges.iter().map(|&(u, v)| Edge::new(u, v)).collect();
    let f = env.file_from_slice(&format!("{name}-rebuild-edges"), &es)?;
    let g = EdgeListGraph::new(f, n);
    let reps = tarjan_scc(&CsrGraph::from_edges(n, &es)).canonical_reps();
    let before = env.stats().snapshot();
    let labs: Vec<SccLabel> = reps
        .iter()
        .enumerate()
        .map(|(i, &r)| SccLabel::new(i as u32, r))
        .collect();
    let lf = env.file_from_slice(&format!("{name}-rebuild-labs"), &labs)?;
    let counted = condense_counted(&env, &g, &lf)?;
    SccIndex::build(&env, &env.root().join(format!("{name}-rebuild.sccidx")), &lf, n, Some(&counted))?;
    Ok(env.stats().snapshot().since(&before).total_ios())
}

fn main() -> std::io::Result<()> {
    let mut tag = String::new();
    let mut out_dir = String::from(".");
    let mut reps = 3usize;
    let mut updates = 300u64;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value\n{USAGE}");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--tag" => tag = value("--tag"),
            "--out" => out_dir = value("--out"),
            "--reps" => {
                reps = value("--reps").parse().unwrap_or_else(|_| {
                    eprintln!("--reps needs a positive integer\n{USAGE}");
                    std::process::exit(2);
                })
            }
            "--updates" => {
                updates = value("--updates").parse().unwrap_or_else(|_| {
                    eprintln!("--updates needs a positive integer\n{USAGE}");
                    std::process::exit(2);
                })
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(());
            }
            other => {
                eprintln!("unknown argument {other:?}\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    if tag.is_empty() || reps == 0 || updates == 0 {
        eprintln!("{USAGE}");
        std::process::exit(2);
    }

    std::fs::create_dir_all(&out_dir)?;
    let host_cpus = std::thread::available_parallelism().map_or(1, |p| p.get());

    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"tag\": \"{}\",", json_escape(&tag)).unwrap();
    writeln!(json, "  \"kind\": \"deltas\",").unwrap();
    writeln!(json, "  \"block_size\": {BLOCK},").unwrap();
    writeln!(json, "  \"host_block_size\": {},", host_block_size(&out_dir)).unwrap();
    writeln!(json, "  \"host_cpus\": {host_cpus},").unwrap();
    writeln!(json, "  \"n_updates\": {updates},").unwrap();
    writeln!(json, "  \"reps\": {reps},").unwrap();
    writeln!(json, "  \"cells\": [").unwrap();

    let fams = families();
    for (fi, fam) in fams.iter().enumerate() {
        // Median wall across fresh repetitions; logical I/O must be
        // identical across them (the stream and the pricing are both
        // deterministic).
        let mut cells = Vec::with_capacity(reps);
        for _ in 0..reps {
            let (cell, fin) = run_family(fam, updates, 0x9e37_79b9)?;
            if let Some(prev) = cells.last() {
                let prev: &(Cell, Vec<(u32, u32)>) = prev;
                assert_eq!(
                    prev.0.total_ios, cell.total_ios,
                    "{}: logical I/O must be deterministic across reps",
                    fam.name
                );
            }
            cells.push((cell, fin));
        }
        cells.sort_by_key(|(c, _)| c.wall);
        let (cell, fin) = &cells[reps / 2];
        let rebuild = rebuild_floor(fam.name, fam.n, fin)?;
        let wall_ms = cell.wall.as_secs_f64() * 1e3;
        let ups = cell.updates as f64 / cell.wall.as_secs_f64().max(1e-9);
        let per_update = cell.total_ios as f64 / cell.updates as f64;
        eprintln!(
            "{:<13} {} updates ({} add / {} remove, {} merges): {:.0} updates/s, \
             {:.1} I/Os per update vs {} to rebuild",
            fam.name, cell.updates, cell.adds, cell.removes, cell.merges, ups, per_update,
            rebuild
        );
        writeln!(json, "    {{").unwrap();
        writeln!(json, "      \"family\": \"{}\",", cell.family).unwrap();
        writeln!(json, "      \"n_nodes\": {},", cell.n_nodes).unwrap();
        writeln!(json, "      \"updates\": {},", cell.updates).unwrap();
        writeln!(json, "      \"adds\": {},", cell.adds).unwrap();
        writeln!(json, "      \"removes\": {},", cell.removes).unwrap();
        writeln!(json, "      \"merges\": {},", cell.merges).unwrap();
        writeln!(json, "      \"updates_per_sec\": {ups:.1},").unwrap();
        writeln!(json, "      \"total_ios\": {},", cell.total_ios).unwrap();
        writeln!(json, "      \"ios_per_update\": {per_update:.2},").unwrap();
        writeln!(json, "      \"rebuild_ios\": {rebuild},").unwrap();
        writeln!(json, "      \"wall_ms\": {wall_ms:.3}").unwrap();
        writeln!(json, "    }}{}", if fi + 1 < fams.len() { "," } else { "" }).unwrap();
    }
    writeln!(json, "  ]").unwrap();
    writeln!(json, "}}").unwrap();

    let path = std::path::Path::new(&out_dir).join(format!("BENCH_{tag}.json"));
    let mut f = std::fs::File::create(&path)?;
    f.write_all(json.as_bytes())?;
    f.flush()?;
    eprintln!("wrote {}", path.display());
    Ok(())
}
