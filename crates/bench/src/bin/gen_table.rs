//! Prints the scaled Table I. `--quick` for the small configuration.

use ce_bench::figures::table1_text;
use ce_bench::Scale;

fn main() {
    print!("{}", table1_text(Scale::from_args()));
}
