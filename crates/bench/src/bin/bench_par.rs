//! Parallel-speedup emitter for the multi-core sort/contraction hot paths:
//! runs Ext-SCC-Op on the smoke workload grid at `threads = 1` and
//! `threads = N` and writes the wall-time grid to `BENCH_<tag>.json`
//! (`"kind": "par"`).
//!
//! The scenario is **exactly** the engine trajectory's: the conformance
//! matrix's smoke generators (`ce_harness::smoke_workloads`) under its
//! tight memory regime (`ce_harness::tight_budget`) at `MATRIX_BLOCK`, so
//! a `threads = 1` cell's `logical_ios` is comparable 1:1 against the
//! committed `BENCH_pr6.json` Ext-SCC-Op column. The emitter itself
//! enforces the tentpole invariant — logical I/O must be **bit-identical**
//! across thread counts — and exits non-zero on any divergence, so a grid
//! that reached disk is already a proof the parallel paths priced
//! correctly on this host.
//!
//! Wall time is the only noisy column: each cell runs one discarded warmup
//! pass and `--reps` measured repetitions, reporting the **median**. The
//! header records `host_cpus` ([`ce_bench::trajectory::detect_host_cpus`])
//! because speedup is a property of the host: the committed file from a
//! 1-CPU container legitimately shows none, and consumers
//! (`tests/par_gate.rs`, CI's `--check-scaling`) gate wall-clock
//! assertions on the recorded value.
//!
//! ```text
//! cargo run --release -p ce-bench --bin bench_par -- --tag par [--out DIR]
//!     [--reps K] [--threads N] [--check-scaling X]
//! ```
//!
//! `--check-scaling X` exits non-zero if any family's N-thread wall time
//! exceeds `X ×` its 1-thread wall time — skipped (with a note) when the
//! host has fewer than 4 CPUs, where the ratio measures the scheduler,
//! not the sort.

use std::fmt::Write as _;
use std::io::Write as _;
use std::time::Duration;

use ce_bench::runner::{run_algo, Outcome, RunBudget};
use ce_bench::trajectory::detect_host_cpus;
use ce_core::ExtSccAlgo;
use ce_extmem::{DiskEnv, EnvOptions, IoConfig};
use ce_harness::{smoke_workloads, tight_budget, MATRIX_BLOCK as BLOCK};

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

const USAGE: &str = "usage: bench_par --tag <tag> [--out <dir>] [--reps <k>] [--threads <n>]\n\
       [--check-scaling <x>]";

fn main() -> std::io::Result<()> {
    let mut tag = String::new();
    let mut out_dir = String::from(".");
    let mut reps = 3usize;
    let mut par_threads = 0usize; // 0 = pick from the host below
    let mut check_scaling: Option<f64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut num = |name: &str| {
            args.next().and_then(|v| v.parse::<f64>().ok()).unwrap_or_else(|| {
                eprintln!("{name} needs a number");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--tag" => tag = args.next().unwrap_or_default(),
            "--out" => out_dir = args.next().unwrap_or_default(),
            "--reps" => reps = (num("--reps") as usize).max(1),
            "--threads" => par_threads = num("--threads") as usize,
            "--check-scaling" => check_scaling = Some(num("--check-scaling")),
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(());
            }
            other => {
                eprintln!("unknown argument {other:?}; see --help");
                std::process::exit(2);
            }
        }
    }
    if tag.is_empty() || out_dir.is_empty() {
        eprintln!("{USAGE}");
        std::process::exit(2);
    }

    let host_cpus = detect_host_cpus();
    if par_threads == 0 {
        // Default: the host's real parallelism, floored at 2 so the grid
        // always exercises the parallel code paths (and their stats
        // invariance) even on single-core containers.
        par_threads = (host_cpus as usize).clamp(2, 8);
    }
    if par_threads < 2 {
        eprintln!("--threads must be at least 2 (the grid always includes 1)");
        std::process::exit(2);
    }

    let engine = ExtSccAlgo::optimized();
    let budget = RunBudget::capped(50_000_000, Duration::from_secs(600));
    std::fs::create_dir_all(&out_dir)?;

    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"tag\": \"{}\",", json_escape(&tag)).unwrap();
    writeln!(json, "  \"kind\": \"par\",").unwrap();
    writeln!(json, "  \"block_size\": {BLOCK},").unwrap();
    writeln!(json, "  \"host_cpus\": {host_cpus},").unwrap();
    writeln!(json, "  \"engine\": \"Ext-SCC-Op\",").unwrap();
    writeln!(json, "  \"budget_regime\": \"tight\",").unwrap();
    writeln!(json, "  \"reps\": {reps},").unwrap();
    writeln!(json, "  \"cells\": [").unwrap();

    let workloads = smoke_workloads();
    let grid: Vec<usize> = vec![1, par_threads];
    let n_cells = workloads.len() * grid.len();
    let mut ci = 0usize;
    // (family, threads) -> median wall ms; family -> logical ios at t=1.
    let mut walls = std::collections::HashMap::<(String, usize), f64>::new();
    let mut violations = Vec::new();
    for (family, n, build) in &workloads {
        let mem = tight_budget(*n);
        println!("== {family} ({n} nodes, {mem} B budget) ==");
        let mut ios_t1: Option<u64> = None;
        for &threads in &grid {
            let mut cell_walls = Vec::with_capacity(reps);
            let mut last = None;
            for rep in 0..=reps {
                let env = DiskEnv::new_temp_with(
                    IoConfig::new(BLOCK, mem),
                    EnvOptions::default().with_threads(threads),
                )?;
                let g = build(&env)?;
                let m = run_algo(&env, &g, &engine, &budget);
                if rep > 0 {
                    cell_walls.push(m.wall);
                    last = Some(m);
                }
            }
            let m = last.expect("reps >= 1");
            cell_walls.sort();
            let wall = cell_walls[cell_walls.len() / 2];
            let wall_ms = wall.as_secs_f64() * 1e3;
            walls.insert((family.to_string(), threads), wall_ms);
            match ios_t1 {
                None => ios_t1 = Some(m.ios),
                Some(base) if base != m.ios => violations.push(format!(
                    "{family}: logical I/O diverged at threads={threads}: {} vs {base} at threads=1",
                    m.ios
                )),
                Some(_) => {}
            }
            let (outcome, n_sccs) = match &m.outcome {
                Outcome::Ok(n) => ("ok", n.to_string()),
                Outcome::Inf => ("inf", "null".to_string()),
                Outcome::Dnf(_) => ("dnf", "null".to_string()),
            };
            println!(
                "  {threads} thread(s)  {outcome:<4} logical {:>8}  {:>9.2?}",
                m.ios, wall
            );
            writeln!(json, "    {{").unwrap();
            writeln!(json, "      \"family\": \"{family}\",").unwrap();
            writeln!(json, "      \"threads\": {threads},").unwrap();
            writeln!(json, "      \"outcome\": \"{outcome}\",").unwrap();
            writeln!(json, "      \"n_sccs\": {n_sccs},").unwrap();
            writeln!(json, "      \"logical_ios\": {},", m.ios).unwrap();
            writeln!(json, "      \"wall_ms\": {wall_ms:.3}").unwrap();
            write!(json, "    }}").unwrap();
            ci += 1;
            writeln!(json, "{}", if ci < n_cells { "," } else { "" }).unwrap();
        }
    }
    writeln!(json, "  ]").unwrap();
    writeln!(json, "}}").unwrap();

    if !violations.is_empty() {
        for v in &violations {
            eprintln!("INVARIANT VIOLATION: {v}");
        }
        std::process::exit(1);
    }

    let path = std::path::Path::new(&out_dir).join(format!("BENCH_{tag}.json"));
    let mut f = std::fs::File::create(&path)?;
    f.write_all(json.as_bytes())?;
    println!("wrote {}", path.display());

    if let Some(factor) = check_scaling {
        if host_cpus < 4 {
            println!(
                "scaling check skipped: host has {host_cpus} CPU(s); \
                 the {par_threads}-thread/1-thread wall ratio is a scheduler artifact"
            );
        } else {
            let mut bad = false;
            for (family, _, _) in &workloads {
                let one = walls[&(family.to_string(), 1)];
                let par = walls[&(family.to_string(), par_threads)];
                if par > factor * one {
                    eprintln!(
                        "SCALING VIOLATION: {family} {par_threads}-thread wall {par:.1} ms > \
                         {factor}x 1-thread {one:.1} ms"
                    );
                    bad = true;
                } else {
                    println!(
                        "scaling ok: {family} {par_threads}-thread {par:.1} ms vs 1-thread \
                         {one:.1} ms ({:.2}x)",
                        one / par
                    );
                }
            }
            if bad {
                std::process::exit(1);
            }
        }
    }
    Ok(())
}
