//! Shared machinery: run one [`SccAlgorithm`] on one graph under one budget
//! and record (outcome, wall time, I/Os); format sweeps as the paper's
//! series.
//!
//! All dispatch goes through the unified `SccAlgorithm` trait — there is no
//! per-algorithm plumbing here, and every table column is labelled by the
//! trait's `name()` so bench tables and harness reports cannot drift.

use std::fmt;
use std::time::{Duration, Instant};

use ce_extmem::{DiskEnv, IoConfig};
use ce_graph::algo::{AlgoBudget, AlgoError, SccAlgorithm};
use ce_graph::EdgeListGraph;

/// How big an experiment to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-scale runs used by `cargo bench` and CI.
    Quick,
    /// The defaults recorded in `EXPERIMENTS.md`.
    Full,
}

impl Scale {
    /// Parses `--quick`/`--full` from process args; defaults to `Full`.
    pub fn from_args() -> Scale {
        if std::env::args().any(|a| a == "--quick") {
            Scale::Quick
        } else {
            Scale::Full
        }
    }

    /// Picks `q` under `Quick` and `f` under `Full`.
    pub fn pick<T>(&self, q: T, f: T) -> T {
        match self {
            Scale::Quick => q,
            Scale::Full => f,
        }
    }
}

/// Result class of one run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// Completed; payload = number of SCCs.
    Ok(u64),
    /// Exceeded its time/I-O budget (the paper's INF).
    Inf,
    /// Stalled / failed structurally (the paper's "cannot stop" EM-SCC).
    Dnf(String),
}

/// One measured cell of a figure.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Algorithm label (the trait's `name()`).
    pub algo: &'static str,
    /// What happened.
    pub outcome: Outcome,
    /// Total block I/Os consumed.
    pub ios: u64,
    /// Random block I/Os.
    pub rand_ios: u64,
    /// Wall time.
    pub wall: Duration,
    /// Contraction iterations (Ext-SCC family only).
    pub iterations: Option<usize>,
}

/// Cost model of the paper's 2007-era testbed disk: a sequential 8 KiB block
/// at ~100 MB/s versus a random block dominated by seek + rotational delay.
/// Wall time on a modern page-cached SSD hides exactly the asymmetry the
/// paper's time panels show, so the figures print *modeled disk time*
/// alongside measured wall time and raw I/O counts.
pub const SEQ_BLOCK_MS: f64 = 0.08;
/// Random-block cost of the model (see [`SEQ_BLOCK_MS`]).
pub const RAND_BLOCK_MS: f64 = 8.0;

impl Measurement {
    /// Measured wall time cell.
    pub fn time_cell(&self) -> String {
        match self.outcome {
            Outcome::Ok(_) => format!("{:.2}s", self.wall.as_secs_f64()),
            Outcome::Inf => "INF".into(),
            Outcome::Dnf(_) => "DNF".into(),
        }
    }

    /// Modeled 2007-HDD time for the run's I/O mix.
    pub fn modeled_disk(&self) -> Duration {
        let seq = (self.ios - self.rand_ios) as f64 * SEQ_BLOCK_MS;
        let rand = self.rand_ios as f64 * RAND_BLOCK_MS;
        Duration::from_secs_f64((seq + rand) / 1e3)
    }

    /// Modeled disk-time cell — the reproduction of the paper's time axis.
    pub fn disk_cell(&self) -> String {
        match self.outcome {
            Outcome::Ok(_) => {
                let s = self.modeled_disk().as_secs_f64();
                if s >= 60.0 {
                    format!("{:.1}m", s / 60.0)
                } else {
                    format!("{s:.2}s")
                }
            }
            Outcome::Inf => "INF".into(),
            Outcome::Dnf(_) => "DNF".into(),
        }
    }

    /// The value plotted on the paper's I/O axis.
    pub fn io_cell(&self) -> String {
        match self.outcome {
            Outcome::Ok(_) => human_count(self.ios),
            Outcome::Inf => "INF".into(),
            Outcome::Dnf(_) => "DNF".into(),
        }
    }
}

/// Renders counts the way the paper's axes do (200K, 1.2M, ...).
pub fn human_count(n: u64) -> String {
    if n >= 10_000_000 {
        format!("{:.1}M", n as f64 / 1e6)
    } else if n >= 1_000_000 {
        format!("{:.2}M", n as f64 / 1e6)
    } else if n >= 1_000 {
        format!("{:.0}K", n as f64 / 1e3)
    } else {
        n.to_string()
    }
}

/// Per-run budget standing in for the paper's 24-hour limit (re-exported
/// from the unified algorithm interface).
pub type RunBudget = AlgoBudget;

/// Runs any [`SccAlgorithm`] under `budget` and classifies the outcome the
/// way the paper's tables do: completion, INF (budget exceeded) or DNF
/// (structural failure). I/Os and wall time are recorded either way.
pub fn run_algo(
    env: &DiskEnv,
    g: &EdgeListGraph,
    algo: &dyn SccAlgorithm,
    budget: &RunBudget,
) -> Measurement {
    let before = env.stats().snapshot();
    let t = Instant::now();
    let result = algo.run_budgeted(env, g, budget);
    let d = env.stats().snapshot().since(&before);
    let (outcome, iterations) = match result {
        Ok(run) => (Outcome::Ok(run.n_sccs), run.iterations),
        Err(AlgoError::Budget(_)) => (Outcome::Inf, None),
        Err(e) => (Outcome::Dnf(e.to_string()), None),
    };
    Measurement {
        algo: algo.name(),
        outcome,
        ios: d.total_ios(),
        rand_ios: d.random_ios(),
        wall: t.elapsed(),
        iterations,
    }
}

/// Creates the standard experiment environment: `block_size` plus a memory
/// budget expressed directly (the figures sweep it).
pub fn bench_env(block_size: usize, mem_budget: usize) -> DiskEnv {
    DiskEnv::new_temp(IoConfig::new(block_size, mem_budget)).expect("scratch dir")
}

/// A sweep result: one row per x-axis point, one column pair per algorithm —
/// the tabular form of one paper figure (its (a) time and (b) I/O panels).
pub struct SweepTable {
    /// Figure title, e.g. "Fig. 6 — WEBSPAM substitute: vary edge fraction".
    pub title: String,
    /// X-axis label, e.g. "edges %".
    pub x_label: String,
    /// Algorithm labels, fixed order (taken from `SccAlgorithm::name()`).
    pub algos: Vec<&'static str>,
    /// `(x value, measurements in algo order)`.
    pub rows: Vec<(String, Vec<Measurement>)>,
}

impl SweepTable {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, x_label: impl Into<String>, algos: Vec<&'static str>) -> Self {
        SweepTable {
            title: title.into(),
            x_label: x_label.into(),
            algos,
            rows: Vec::new(),
        }
    }

    /// Creates an empty table with columns labelled by the given algorithms.
    pub fn for_algos(
        title: impl Into<String>,
        x_label: impl Into<String>,
        algos: &[Box<dyn SccAlgorithm>],
    ) -> Self {
        SweepTable::new(title, x_label, algos.iter().map(|a| a.name()).collect())
    }

    /// Appends one x-axis point.
    pub fn push_row(&mut self, x: impl Into<String>, row: Vec<Measurement>) {
        assert_eq!(row.len(), self.algos.len(), "row width mismatch");
        self.rows.push((x.into(), row));
    }

    fn panel(&self, f: &mut fmt::Formatter<'_>, which: &str) -> fmt::Result {
        writeln!(f, "  ({which})")?;
        write!(f, "  {:>12}", self.x_label)?;
        for a in &self.algos {
            write!(f, " {a:>14}")?;
        }
        writeln!(f)?;
        for (x, row) in &self.rows {
            write!(f, "  {x:>12}")?;
            for m in row {
                let cell = match which {
                    "wall time" => m.time_cell(),
                    "modeled disk time" => m.disk_cell(),
                    _ => m.io_cell(),
                };
                write!(f, " {cell:>14}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

impl fmt::Display for SweepTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.title)?;
        self.panel(f, "modeled disk time")?;
        self.panel(f, "I/Os")?;
        self.panel(f, "wall time")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ce_core::ExtSccAlgo;
    use ce_dfs_scc::{DfsMode, DfsSccAlgo};
    use ce_graph::gen;

    #[test]
    fn human_count_formats() {
        assert_eq!(human_count(999), "999");
        assert_eq!(human_count(42_000), "42K");
        assert_eq!(human_count(1_230_000), "1.23M");
        assert_eq!(human_count(12_300_000), "12.3M");
    }

    #[test]
    fn scale_pick() {
        assert_eq!(Scale::Quick.pick(1, 2), 1);
        assert_eq!(Scale::Full.pick(1, 2), 2);
    }

    #[test]
    fn run_algo_measures_and_labels() {
        let env = bench_env(1 << 12, 1 << 20);
        let g = gen::cycle(&env, 500).unwrap();
        let m = run_algo(&env, &g, &ExtSccAlgo::optimized(), &RunBudget::unlimited());
        assert_eq!(m.algo, "Ext-SCC-Op");
        assert_eq!(m.outcome, Outcome::Ok(1));
        assert!(m.ios > 0);
        assert_eq!(m.iterations, Some(0), "roomy budget: no contraction");
    }

    #[test]
    fn inf_outcome_from_io_cap() {
        let env = bench_env(1 << 10, 16 << 10);
        let g = gen::permuted_cycle(&env, 3000, 1).unwrap();
        let m = run_algo(
            &env,
            &g,
            &DfsSccAlgo::new(DfsMode::Naive),
            &RunBudget::capped(50, Duration::from_secs(60)),
        );
        assert_eq!(m.algo, "DFS-SCC");
        assert_eq!(m.outcome, Outcome::Inf);
        assert_eq!(m.time_cell(), "INF");
        assert_eq!(m.io_cell(), "INF");
    }

    #[test]
    fn sweep_table_renders_both_panels() {
        let mut t = SweepTable::new("Fig. X", "mem", vec!["a", "b"]);
        let m = Measurement {
            algo: "a",
            outcome: Outcome::Ok(3),
            ios: 1234,
            rand_ios: 5,
            wall: Duration::from_millis(250),
            iterations: Some(2),
        };
        t.push_row("400M", vec![m.clone(), m]);
        let text = t.to_string();
        assert!(text.contains("(wall time)"));
        assert!(text.contains("(modeled disk time)"));
        assert!(text.contains("(I/Os)"));
        assert!(text.contains("0.25s"));
        assert!(text.contains("1K") || text.contains("1234"));
    }

    #[test]
    fn table_columns_from_trait_names() {
        let algos: Vec<Box<dyn SccAlgorithm>> =
            vec![Box::new(ExtSccAlgo::optimized()), Box::new(ExtSccAlgo::baseline())];
        let t = SweepTable::for_algos("t", "x", &algos);
        assert_eq!(t.algos, vec!["Ext-SCC-Op", "Ext-SCC"]);
    }
}
