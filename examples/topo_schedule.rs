//! Topological scheduling with cyclic dependencies — the paper's motivating
//! application #1.
//!
//! ```text
//! cargo run --release --example topo_schedule
//! ```
//!
//! A build/planning system must order tasks by their dependencies; mutually
//! dependent tasks (cycles) get equal rank and are merged into one scheduling
//! unit. That is exactly "contract every SCC, then topologically sort the
//! condensation". This example plants dependency cycles in a task graph and
//! runs one `SccSession` whose product — a persistent `SccIndex` with the
//! condensation DAG embedded — is everything the scheduler needs: unit
//! membership via `component_of`, unit sizes via `components()`, and the
//! dependency DAG via `condensation_edges()`.

use std::collections::HashMap;

use contract_expand::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = IoConfig::new(4 << 10, 256 << 10);

    // A dependency graph: 30k tasks, some groups mutually dependent.
    println!("generating a task graph with planted dependency cycles...");
    let spec = gen::SyntheticSpec {
        n_nodes: 30_000,
        avg_degree: 3.0,
        planted: vec![
            gen::PlantedScc { count: 4, size: 500 },
            gen::PlantedScc { count: 40, size: 25 },
        ],
        acyclic_filler: true, // dependencies otherwise form a DAG
        seed: 2024,
    };
    let mut session = SccSession::open(cfg, EnvOptions::pooled(&cfg))?
        .source(GraphSource::generator(move |env| {
            gen::planted_scc_graph(env, &spec)
        }))?
        .condensation(true);
    let n_tasks = session.graph().expect("sourced").n_nodes();
    let n_deps = session.graph().expect("sourced").n_edges();
    println!("tasks: {n_tasks}, dependencies: {n_deps}");

    // 1. Collapse cyclic groups (the planner picks the engine) and keep the
    //    result as the scheduling artifact.
    let idx_path =
        std::env::temp_dir().join(format!("topo-schedule-{}.sccidx", std::process::id()));
    let mut built = session.build_index(&idx_path)?;
    let index = &mut built.index;
    let n_units = index.n_sccs() as usize;
    println!(
        "scheduling units after SCC contraction: {} (from {} tasks, engine {})",
        n_units, n_tasks, built.plan.engine
    );

    // Dense unit numbering from the stored component table.
    let mut dense: HashMap<u32, u32> = HashMap::new();
    let mut unit_sizes = Vec::with_capacity(n_units);
    for entry in index.components().collect::<Vec<_>>() {
        let (rep, size) = entry?;
        let next = dense.len() as u32;
        dense.insert(rep, next);
        unit_sizes.push(size);
    }
    let mut dag_edges = Vec::new();
    for e in index.condensation_edges().collect::<Vec<_>>() {
        let e = e?;
        dag_edges.push(Edge::new(dense[&e.src], dense[&e.dst]));
    }

    // 2. Kahn topological sort into waves (unit rank = longest path depth).
    let mut indeg = vec![0u32; n_units];
    let dag = CsrGraph::from_edges(n_units as u64, &dag_edges);
    for e in &dag_edges {
        indeg[e.dst as usize] += 1;
    }
    let mut wave: Vec<u32> = (0..n_units as u32)
        .filter(|&u| indeg[u as usize] == 0)
        .collect();
    let mut rank = vec![0u32; n_units];
    let mut waves: Vec<usize> = Vec::new();
    let mut scheduled = 0usize;
    while !wave.is_empty() {
        waves.push(wave.len());
        scheduled += wave.len();
        let mut next = Vec::new();
        for &u in &wave {
            for &v in dag.neighbors(u) {
                indeg[v as usize] -= 1;
                rank[v as usize] = rank[v as usize].max(rank[u as usize] + 1);
                if indeg[v as usize] == 0 {
                    next.push(v);
                }
            }
        }
        wave = next;
    }
    assert_eq!(scheduled, n_units, "condensation must be acyclic");

    // 3. Report.
    println!("schedule depth: {} waves", waves.len());
    let head: Vec<usize> = waves.iter().copied().take(10).collect();
    println!("units per wave (first 10): {head:?}");

    // The merged units contain the planted cyclic groups.
    let mut sizes = unit_sizes.clone();
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    sizes.truncate(5);
    println!("largest mutually-dependent groups: {sizes:?}");
    assert!(sizes[0] >= 500, "planted 500-task cycles must be merged");

    // Tasks in one unit share a rank; a dependency crossing units increases
    // rank strictly. Spot-check a few edges with point queries against the
    // artifact — the scheduler never loads a task->unit array.
    let edges = session.graph().expect("sourced").edges_in_memory()?;
    for e in edges.iter().take(1000) {
        let a = dense[&index.component_of(e.src)?];
        let b = dense[&index.component_of(e.dst)?];
        if a != b {
            assert!(rank[a as usize] < rank[b as usize], "rank violates edge");
        }
    }
    println!("rank consistency verified on sample edges (via index point queries)");

    std::fs::remove_file(&idx_path)?;
    Ok(())
}
