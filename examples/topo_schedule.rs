//! Topological scheduling with cyclic dependencies — the paper's motivating
//! application #1.
//!
//! ```text
//! cargo run --release --example topo_schedule
//! ```
//!
//! A build/planning system must order tasks by their dependencies; mutually
//! dependent tasks (cycles) get equal rank and are merged into one scheduling
//! unit. That is exactly "contract every SCC, then topologically sort the
//! condensation". This example plants dependency cycles in a task graph,
//! finds them with Ext-SCC-Op, and prints the schedule waves.

use contract_expand::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let env = DiskEnv::new_temp(IoConfig::new(4 << 10, 256 << 10))?;

    // A dependency graph: 30k tasks, some groups mutually dependent.
    println!("generating a task graph with planted dependency cycles...");
    let spec = gen::SyntheticSpec {
        n_nodes: 30_000,
        avg_degree: 3.0,
        planted: vec![
            gen::PlantedScc { count: 4, size: 500 },
            gen::PlantedScc { count: 40, size: 25 },
        ],
        acyclic_filler: true, // dependencies otherwise form a DAG
        seed: 2024,
    };
    let graph = gen::planted_scc_graph(&env, &spec)?;
    println!("tasks: {}, dependencies: {}", graph.n_nodes(), graph.n_edges());

    // 1. Collapse cyclic groups.
    let out = ExtScc::new(&env, ExtSccConfig::optimized()).run(&graph)?;
    let labeling = SccLabeling::from_file(&out.labels, graph.n_nodes())?;
    let edges = graph.edges_in_memory()?;
    let (n_units, unit_of, dag_edges) = labeling.condense(&edges);
    println!(
        "scheduling units after SCC contraction: {} (from {} tasks)",
        n_units,
        graph.n_nodes()
    );

    // 2. Kahn topological sort into waves (unit rank = longest path depth).
    let mut indeg = vec![0u32; n_units];
    let dag = CsrGraph::from_edges(n_units as u64, &dag_edges);
    for e in &dag_edges {
        indeg[e.dst as usize] += 1;
    }
    let mut wave: Vec<u32> = (0..n_units as u32)
        .filter(|&u| indeg[u as usize] == 0)
        .collect();
    let mut rank = vec![0u32; n_units];
    let mut waves: Vec<usize> = Vec::new();
    let mut scheduled = 0usize;
    while !wave.is_empty() {
        waves.push(wave.len());
        scheduled += wave.len();
        let mut next = Vec::new();
        for &u in &wave {
            for &v in dag.neighbors(u) {
                indeg[v as usize] -= 1;
                rank[v as usize] = rank[v as usize].max(rank[u as usize] + 1);
                if indeg[v as usize] == 0 {
                    next.push(v);
                }
            }
        }
        wave = next;
    }
    assert_eq!(scheduled, n_units, "condensation must be acyclic");

    // 3. Report.
    println!("schedule depth: {} waves", waves.len());
    let head: Vec<usize> = waves.iter().copied().take(10).collect();
    println!("units per wave (first 10): {head:?}");

    // The merged units contain the planted cyclic groups.
    let mut sizes = labeling.size_histogram();
    sizes.truncate(5);
    println!("largest mutually-dependent groups: {sizes:?}");
    assert!(sizes[0] >= 500, "planted 500-task cycles must be merged");

    // Tasks in one unit share a rank; a dependency crossing units increases
    // rank strictly (spot-check a few edges).
    for e in edges.iter().take(1000) {
        let (a, b) = (unit_of[e.src as usize], unit_of[e.dst as usize]);
        if a != b {
            assert!(rank[a as usize] < rank[b as usize], "rank violates edge");
        }
    }
    println!("rank consistency verified on sample edges");
    Ok(())
}
