//! Reachability indexing — the paper's motivating application #2.
//!
//! ```text
//! cargo run --release --example reachability
//! ```
//!
//! Almost every reachability index for general directed graphs (GRAIL, etc.)
//! first contracts each SCC to a node, because `u → v` holds iff
//! `SCC(u) → SCC(v)` in the condensation DAG. This example builds that DAG
//! with Ext-SCC-Op on a web-like graph and answers reachability queries on
//! it, demonstrating the compression SCC contraction buys.

use std::collections::VecDeque;

use contract_expand::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let env = DiskEnv::new_temp(IoConfig::new(4 << 10, 256 << 10))?;

    println!("generating a web-like bow-tie graph (40k pages, degree 5)...");
    let graph = gen::web_like(&env, 40_000, 5.0, 99)?;
    println!("graph: |V| = {}, |E| = {}", graph.n_nodes(), graph.n_edges());

    // 1. SCC computation (external).
    let out = ExtScc::new(&env, ExtSccConfig::optimized()).run(&graph)?;
    println!(
        "Ext-SCC-Op: {} SCCs in {} iterations, {} I/Os",
        out.report.n_sccs,
        out.report.iterations(),
        out.report.total_ios.total_ios()
    );

    // 2. Condensation (the graph is condensed enough to process in memory —
    //    that is the point of the preprocessing step).
    let labeling = SccLabeling::from_file(&out.labels, graph.n_nodes())?;
    let edges = graph.edges_in_memory()?;
    let (n_comp, comp_of, dag_edges) = labeling.condense(&edges);
    println!(
        "condensation: {} nodes, {} edges ({}x node compression)",
        n_comp,
        dag_edges.len(),
        graph.n_nodes() / n_comp as u64
    );

    // 3. Reachability on the DAG via BFS (an index would precompute labels;
    //    BFS keeps the example self-contained).
    let dag = CsrGraph::from_edges(n_comp as u64, &dag_edges);
    let reach = |from: u32, to: u32| -> bool {
        let (s, t) = (comp_of[from as usize], comp_of[to as usize]);
        if s == t {
            return true;
        }
        let mut seen = vec![false; n_comp];
        let mut q = VecDeque::from([s]);
        seen[s as usize] = true;
        while let Some(x) = q.pop_front() {
            for &y in dag.neighbors(x) {
                if y == t {
                    return true;
                }
                if !seen[y as usize] {
                    seen[y as usize] = true;
                    q.push_back(y);
                }
            }
        }
        false
    };

    // Sample queries: IN-region nodes reach the core; the core reaches the
    // OUT region; OUT never reaches IN.
    let n = graph.n_nodes() as u32;
    let core = n / 8; // middle of the core region
    let in_node = n / 4 + n / 10; // middle of IN
    let out_node = n / 4 + n / 5 + n / 10; // middle of OUT
    let queries = [
        ("IN   -> core", in_node, core),
        ("core -> OUT ", core, out_node),
        ("OUT  -> IN  ", out_node, in_node),
        ("core -> core", core, core + 1),
    ];
    println!("\nsample queries:");
    let mut answers = Vec::new();
    for (label, u, v) in queries {
        let r = reach(u, v);
        println!("  {label}: {u} -> {v}: {r}");
        answers.push(r);
    }
    assert_eq!(answers[..3], [true, true, false], "bow-tie structure");
    Ok(())
}
