//! Reachability indexing — the paper's motivating application #2.
//!
//! ```text
//! cargo run --release --example reachability
//! ```
//!
//! Almost every reachability index for general directed graphs (GRAIL, etc.)
//! first contracts each SCC to a node, because `u → v` holds iff
//! `SCC(u) → SCC(v)` in the condensation DAG. This example builds a
//! persistent `SccIndex` *with the condensation embedded* on a web-like
//! graph, then answers reachability queries from the artifact alone: the
//! endpoints are resolved with block-budgeted `component_of` queries and
//! the BFS runs over the stored DAG — the session that computed the SCCs is
//! long gone by the time the queries run.

use std::collections::{HashMap, VecDeque};

use contract_expand::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = IoConfig::new(4 << 10, 256 << 10);
    let idx_path =
        std::env::temp_dir().join(format!("reachability-{}.sccidx", std::process::id()));

    println!("generating a web-like bow-tie graph (40k pages, degree 5)...");
    let n: u32 = 40_000;
    {
        // 1. The indexing session: SCCs + condensation, persisted and closed.
        let mut session = SccSession::open(cfg, EnvOptions::pooled(&cfg))?
            .source(GraphSource::generator(move |env| {
                gen::web_like(env, n, 5.0, 99)
            }))?
            .condensation(true);
        {
            let g = session.graph().expect("sourced");
            println!("graph: |V| = {}, |E| = {}", g.n_nodes(), g.n_edges());
        }
        let plan = session.plan()?;
        println!("plan: {} ({})", plan.engine, plan.reason);
        let built = session.build_index(&idx_path)?;
        println!(
            "{}: {} SCCs, {} condensation edges, {} I/Os",
            plan.engine,
            built.index.n_sccs(),
            built.index.n_dag_edges(),
            built.run.ios.total_ios()
        );
        println!(
            "condensation: {} nodes, {} edges ({}x node compression)",
            built.index.n_sccs(),
            built.index.n_dag_edges(),
            n as u64 / built.index.n_sccs()
        );
    } // session dropped: scratch gone, only the artifact remains.

    // 2. The serving side: reopen the artifact in a tiny environment.
    let env = DiskEnv::new_temp(IoConfig::new(4 << 10, 8 << 10))?;
    let mut idx = SccIndex::open(&env, &idx_path)?;

    // Load the (small) condensation into memory, densely renumbered — that
    // is the point of the preprocessing step.
    let mut dense: HashMap<u32, u32> = HashMap::new();
    for entry in idx.components() {
        let (rep, _) = entry?;
        let next = dense.len() as u32;
        dense.insert(rep, next);
    }
    let n_comp = dense.len();
    let mut dag_edges = Vec::new();
    for e in idx.condensation_edges().collect::<Vec<_>>() {
        let e = e?;
        dag_edges.push(Edge::new(dense[&e.src], dense[&e.dst]));
    }
    let dag = CsrGraph::from_edges(n_comp as u64, &dag_edges);

    // 3. Reachability: resolve endpoints with point queries against the
    //    index, BFS on the DAG (a production index would precompute labels;
    //    BFS keeps the example self-contained).
    let mut reach = |from: u32, to: u32| -> Result<bool, Box<dyn std::error::Error>> {
        let (s, t) = (
            dense[&idx.component_of(from)?],
            dense[&idx.component_of(to)?],
        );
        if s == t {
            return Ok(true);
        }
        let mut seen = vec![false; n_comp];
        let mut q = VecDeque::from([s]);
        seen[s as usize] = true;
        while let Some(x) = q.pop_front() {
            for &y in dag.neighbors(x) {
                if y == t {
                    return Ok(true);
                }
                if !seen[y as usize] {
                    seen[y as usize] = true;
                    q.push_back(y);
                }
            }
        }
        Ok(false)
    };

    // Sample queries: IN-region nodes reach the core; the core reaches the
    // OUT region; OUT never reaches IN.
    let core = n / 8; // middle of the core region
    let in_node = n / 4 + n / 10; // middle of IN
    let out_node = n / 4 + n / 5 + n / 10; // middle of OUT
    let queries = [
        ("IN   -> core", in_node, core),
        ("core -> OUT ", core, out_node),
        ("OUT  -> IN  ", out_node, in_node),
        ("core -> core", core, core + 1),
    ];
    println!("\nsample queries (answered from the artifact):");
    let mut answers = Vec::new();
    for (label, u, v) in queries {
        let r = reach(u, v)?;
        println!("  {label}: {u} -> {v}: {r}");
        answers.push(r);
    }
    assert_eq!(answers[..3], [true, true, false], "bow-tie structure");

    std::fs::remove_file(&idx_path)?;
    Ok(())
}
