//! Quickstart: compute the SCCs of a graph whose nodes do not fit in memory.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Generates a Table-I style synthetic graph, runs both Ext-SCC and
//! Ext-SCC-Op under a deliberately tight memory budget, verifies the two
//! agree, and prints the contraction trajectory plus the SCC size histogram.

use contract_expand::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The I/O model: 4 KiB blocks and 256 KiB of "main memory".
    // 60k nodes need ~960 KiB of node state, so contraction must run.
    let env = DiskEnv::new_temp(IoConfig::new(4 << 10, 256 << 10))?;

    println!("generating a synthetic graph (60k nodes, degree 4, planted SCCs)...");
    let spec = gen::SyntheticSpec {
        n_nodes: 60_000,
        avg_degree: 4.0,
        planted: vec![
            gen::PlantedScc { count: 4, size: 3000 },
            gen::PlantedScc { count: 30, size: 100 },
        ],
        acyclic_filler: true,
        seed: 7,
    };
    let graph = gen::planted_scc_graph(&env, &spec)?;
    println!(
        "graph: |V| = {}, |E| = {}\n",
        graph.n_nodes(),
        graph.n_edges()
    );

    let mut outputs = Vec::new();
    for (name, cfg) in [
        ("Ext-SCC   ", ExtSccConfig::baseline()),
        ("Ext-SCC-Op", ExtSccConfig::optimized()),
    ] {
        let before = env.stats().snapshot();
        let out = ExtScc::new(&env, cfg).run(&graph)?;
        let ios = env.stats().snapshot().since(&before);
        println!("=== {name} ===");
        println!("{}", out.report);
        println!("phase I/O summary: {ios}\n");
        outputs.push(out);
    }

    // Both variants must produce the same partition.
    let a = SccLabeling::from_file(&outputs[0].labels, graph.n_nodes())?;
    let b = SccLabeling::from_file(&outputs[1].labels, graph.n_nodes())?;
    assert!(
        contract_expand::graph::labels::same_partition(&a.rep, &b.rep),
        "baseline and optimized runs disagree"
    );

    // SCC size histogram (top of it).
    let mut sizes = a.size_histogram();
    sizes.truncate(8);
    println!("largest SCCs: {sizes:?}");
    println!("total SCCs: {}", a.n_sccs());
    assert_eq!(&sizes[..4], &[3000, 3000, 3000, 3000]);
    Ok(())
}
