//! Quickstart: compute the SCCs of a graph whose nodes do not fit in memory
//! and keep the answers in a persistent, queryable index.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Opens an `SccSession` under a deliberately tight memory budget, lets the
//! planner explain which engine the regime calls for, builds the persistent
//! `SccIndex`, and answers point queries from the artifact — then reopens
//! it from a completely fresh environment to show the answers survive the
//! session that computed them.

use contract_expand::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The I/O model: 4 KiB blocks and 256 KiB of "main memory" (shared
    // `parse_size` accepts the same spellings as the `scc` CLI).
    let cfg = IoConfig::new(parse_size("4K")?, parse_size("256K")?);

    println!("generating a synthetic graph (60k nodes, degree 4, planted SCCs)...");
    let spec = gen::SyntheticSpec {
        n_nodes: 60_000,
        avg_degree: 4.0,
        planted: vec![
            gen::PlantedScc { count: 4, size: 3000 },
            gen::PlantedScc { count: 30, size: 100 },
        ],
        acyclic_filler: true,
        seed: 7,
    };
    let mut session = SccSession::open(cfg, EnvOptions::pooled(&cfg))?
        .source(GraphSource::generator(move |env| {
            gen::planted_scc_graph(env, &spec)
        }))?;
    {
        let graph = session.graph().expect("sourced");
        println!("graph: |V| = {}, |E| = {}\n", graph.n_nodes(), graph.n_edges());
    }

    // The planner explains the regime before any I/O is spent: 60k nodes
    // need ~960 KiB of node state, so contraction must run.
    let plan = session.plan()?;
    println!("{plan}\n");
    assert_eq!(plan.engine, Engine::ExtSccOp);

    // Build the persistent index (runs the planned engine, writes the
    // artifact, reopens it through its checksum validation).
    let idx_path = std::env::temp_dir().join(format!("quickstart-{}.sccidx", std::process::id()));
    let mut built = session.build_index(&idx_path)?;
    println!(
        "built {} components in {} engine I/Os + {} index I/Os ({} bytes on disk)\n",
        built.index.n_sccs(),
        built.run.ios.total_ios(),
        built.build_ios.total_ios(),
        built.index.len_bytes()
    );

    // Component sizes straight from the artifact: the four planted
    // 3000-node SCCs dominate.
    let mut sizes: Vec<u64> = built
        .index
        .components()
        .map(|c| c.map(|(_, size)| size))
        .collect::<Result<_, _>>()?;
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    sizes.truncate(8);
    println!("largest SCCs: {sizes:?}");
    println!("total SCCs: {}", built.index.n_sccs());
    assert_eq!(&sizes[..4], &[3000, 3000, 3000, 3000]);

    // Point queries cost at most two block reads each.
    let before = session.env().stats().snapshot();
    let rep = built.index.component_of(0)?;
    let same = built.index.same_component(0, rep)?;
    let spent = session.env().stats().snapshot().since(&before);
    println!(
        "component_of(0) = {rep}, same_component(0, {rep}) = {same}  [{} logical I/Os]",
        spent.total_ios()
    );
    assert!(same);

    // The artifact outlives the session: reopen it from a fresh minimal
    // environment and ask again.
    drop(built);
    let query_env = DiskEnv::new_temp(IoConfig::new(4 << 10, 8 << 10))?;
    let mut idx = SccIndex::open(&query_env, &idx_path)?;
    assert_eq!(idx.component_of(0)?, rep);
    println!("reopened {} and got the same answer", idx_path.display());

    std::fs::remove_file(&idx_path)?;
    Ok(())
}
