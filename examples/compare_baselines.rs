//! Head-to-head comparison of every external SCC algorithm in the workspace
//! on one graph — a miniature of the paper's Section VIII.
//!
//! ```text
//! cargo run --release --example compare_baselines
//! ```
//!
//! Runs Ext-SCC, Ext-SCC-Op, DFS-SCC (naive and BRT, under an I/O budget the
//! way the paper uses its 24-hour limit) and EM-SCC on the same web-like
//! graph with the same memory budget, and prints a comparison table.

use std::time::Instant;

use contract_expand::dfs_scc::{dfs_scc, DfsMode, DfsSccConfig};
use contract_expand::em_scc::{em_scc, EmSccConfig};
use contract_expand::prelude::*;

struct Row {
    name: &'static str,
    outcome: String,
    ios: u64,
    rand_ios: u64,
    millis: u128,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let env = DiskEnv::new_temp(IoConfig::new(4 << 10, 128 << 10))?;
    println!("generating web-like graph (20k nodes, degree 4)...");
    let graph = gen::web_like(&env, 20_000, 4.0, 5)?;
    println!("graph: |V| = {}, |E| = {}\n", graph.n_nodes(), graph.n_edges());

    // Budget stand-in for the paper's 24h limit: generous for Ext-SCC,
    // hopeless for external DFS.
    let io_budget = 2_000_000u64;
    let mut rows: Vec<Row> = Vec::new();

    for (name, cfg) in [
        ("Ext-SCC", ExtSccConfig::baseline()),
        ("Ext-SCC-Op", ExtSccConfig::optimized()),
    ] {
        let before = env.stats().snapshot();
        let t = Instant::now();
        let outcome = match ExtScc::new(&env, cfg).run(&graph) {
            Ok(out) => format!("{} SCCs, {} iters", out.report.n_sccs, out.report.iterations()),
            Err(e) => format!("{e}"),
        };
        let d = env.stats().snapshot().since(&before);
        rows.push(Row {
            name,
            outcome,
            ios: d.total_ios(),
            rand_ios: d.random_ios(),
            millis: t.elapsed().as_millis(),
        });
    }

    for (name, mode) in [("DFS-SCC(naive)", DfsMode::Naive), ("DFS-SCC(BRT)", DfsMode::Brt)] {
        let before = env.stats().snapshot();
        let t = Instant::now();
        let cfg = DfsSccConfig {
            mode,
            io_limit: Some(io_budget),
            ..Default::default()
        };
        let outcome = match dfs_scc(&env, &graph, &cfg) {
            Ok((_, r)) => format!("{} SCCs", r.n_sccs),
            Err(e) => format!("INF ({e})"),
        };
        let d = env.stats().snapshot().since(&before);
        rows.push(Row {
            name,
            outcome,
            ios: d.total_ios(),
            rand_ios: d.random_ios(),
            millis: t.elapsed().as_millis(),
        });
    }

    {
        let before = env.stats().snapshot();
        let t = Instant::now();
        let outcome = match em_scc(&env, &graph, &EmSccConfig::default()) {
            Ok((_, r)) => format!("{} SCCs, {} iters", r.n_sccs, r.iterations.len()),
            Err(e) => format!("DNF ({e})"),
        };
        let d = env.stats().snapshot().since(&before);
        rows.push(Row {
            name: "EM-SCC",
            outcome,
            ios: d.total_ios(),
            rand_ios: d.random_ios(),
            millis: t.elapsed().as_millis(),
        });
    }

    println!(
        "{:<16} {:>10} {:>12} {:>10} outcome",
        "algorithm", "I/Os", "random I/Os", "time(ms)"
    );
    for r in &rows {
        println!(
            "{:<16} {:>10} {:>12} {:>10} {}",
            r.name, r.ios, r.rand_ios, r.millis, r.outcome
        );
    }
    println!(
        "\n(the paper's Figures 6-9 shape: Ext-SCC-Op <= Ext-SCC << DFS-SCC;\n\
         EM-SCC stalls on web-scale SCC structure; DFS variants are dominated\n\
         by random I/Os)"
    );
    Ok(())
}
