//! Tests of the I/O *character* the paper's argument rests on: Ext-SCC must
//! be scan/sort-dominated, external DFS random-access-dominated, and more
//! memory must mean fewer I/Os. Plus fault-injection coverage across the
//! whole stack.

use contract_expand::dfs_scc::{dfs_scc, DfsSccConfig};
use contract_expand::prelude::*;

#[test]
fn ext_scc_is_sequential_io_dominated() {
    let env = DiskEnv::new_temp(IoConfig::new(1 << 10, 32 << 10)).unwrap();
    let g = gen::web_like(&env, 4000, 4.0, 3).unwrap();
    let before = env.stats().snapshot();
    let out = ExtScc::new(&env, ExtSccConfig::optimized()).run(&g).unwrap();
    let d = env.stats().snapshot().since(&before);
    assert!(out.report.iterations() >= 1);
    assert!(
        d.random_ios() * 20 <= d.total_ios(),
        "Ext-SCC must use only scans and sorts: {d}"
    );
}

#[test]
fn dfs_scc_is_random_io_heavy() {
    let env = DiskEnv::new_temp(IoConfig::new(1 << 10, 32 << 10)).unwrap();
    let g = gen::permuted_cycle(&env, 4000, 17).unwrap();
    let cfg = DfsSccConfig::default();
    let before = env.stats().snapshot();
    let _ = dfs_scc(&env, &g, &cfg).unwrap();
    let d = env.stats().snapshot().since(&before);
    assert!(
        d.random_ios() * 3 > d.total_ios(),
        "external DFS should be random-dominated: {d}"
    );
}

#[test]
fn more_memory_means_fewer_ios_and_iterations() {
    // The paper's Figure 7/8 monotonicity, asserted end to end.
    let mut results = Vec::new();
    for budget in [24usize << 10, 48 << 10, 128 << 10] {
        let env = DiskEnv::new_temp(IoConfig::new(1 << 10, budget)).unwrap();
        let g = gen::web_like(&env, 5000, 4.0, 3).unwrap();
        let before = env.stats().snapshot();
        let out = ExtScc::new(&env, ExtSccConfig::optimized()).run(&g).unwrap();
        let d = env.stats().snapshot().since(&before);
        results.push((budget, out.report.iterations(), d.total_ios()));
    }
    assert!(
        results[0].1 >= results[1].1 && results[1].1 >= results[2].1,
        "iterations must not grow with memory: {results:?}"
    );
    assert!(
        results[0].2 > results[2].2,
        "I/Os must shrink with memory: {results:?}"
    );
    assert_eq!(results[2].1, 0, "largest budget should skip contraction");
}

#[test]
fn streaming_pipeline_beats_pr4_baseline_by_15_percent() {
    // The PR 4 tree (before the streaming sorted-run pipeline: every sort
    // materialized its final merge, every join re-read it) measured **3608**
    // logical I/Os for Ext-SCC-Op on this exact scenario — the conformance
    // matrix's smoke `web` workload under the tight budget, as recorded in
    // `BENCH_pr4-baseline.json`. Last-merge-pass elision plus fused
    // sort→join chains must keep at least a 15% logical-I/O win over that
    // baseline (BENCH_pr5.json recorded 2672, a 26% cut). The scenario is
    // `ce_harness::smoke_workloads` under `ce_harness::tight_budget` — the
    // exact environment the conformance matrix and the `bench_json` emitter
    // run — so the committed baselines and this test cannot drift apart.
    // The gate runs at every thread count: logical I/O must be identical
    // at threads 1, 2 and 4 (the PR 10 invariant), so the 15% win holds —
    // bit for bit — no matter how many workers the environment grants.
    use contract_expand::harness;
    const PR4_BASELINE_IOS: u64 = 3608;
    let (_, n, build) = harness::smoke_workloads()
        .into_iter()
        .find(|w| w.0 == "web")
        .expect("web workload in the smoke set");
    let budget = harness::tight_budget(n);
    let mut ios_by_threads = Vec::new();
    for threads in [1usize, 2, 4] {
        let env = DiskEnv::new_temp_with(
            IoConfig::new(harness::MATRIX_BLOCK, budget),
            EnvOptions::default().with_threads(threads),
        )
        .unwrap();
        let g = build(&env).unwrap();
        let before = env.stats().snapshot();
        let out = ExtScc::new(&env, ExtSccConfig::optimized()).run(&g).unwrap();
        let ios = env.stats().snapshot().since(&before).total_ios();
        assert_eq!(out.labels.len(), g.n_nodes(), "labeling must stay complete");
        assert!(out.report.iterations() >= 1, "tight budget must contract");
        assert!(
            ios * 100 <= PR4_BASELINE_IOS * 85,
            "Ext-SCC-Op used {ios} logical I/Os on the smoke web workload at \
             threads={threads}; the streaming pipeline promises <= 85% of the \
             PR 4 baseline ({PR4_BASELINE_IOS})"
        );
        ios_by_threads.push(ios);
    }
    assert!(
        ios_by_threads.windows(2).all(|w| w[0] == w[1]),
        "logical I/O must be thread-count-invariant: {ios_by_threads:?}"
    );
}

#[test]
fn pr6_wall_time_beats_pr4_baseline_on_every_cell() {
    // The PR 6 acceptance gate: the committed `BENCH_pr6.json` (median
    // wall_ms over repeated runs, see the bench_json emitter) must be
    // strictly faster than the PR 4 baseline on every engine × workload
    // cell the baseline finished — the batched-pull work must claw back
    // the wall-clock the PR 5 streaming pipeline spent, on every cell,
    // not on average. Cells the baseline did not finish (EM-SCC DNFs)
    // measure the abort budget, not the engine, and are skipped.
    //
    // This compares two committed artifacts rather than timing live code:
    // `cargo test` runs unoptimized builds on shared machines, where live
    // wall-clock assertions flake. CI separately re-measures and diffs
    // against BENCH_pr6.json with a generous tolerance.
    use ce_bench::trajectory::parse_cells;
    let base = parse_cells(include_str!("../BENCH_pr4-baseline.json"));
    let cand = parse_cells(include_str!("../BENCH_pr6.json"));
    assert!(!base.is_empty() && !cand.is_empty(), "BENCH files must parse");

    let mut checked = 0;
    for b in base.iter().filter(|c| c.outcome == "ok") {
        let c = cand
            .iter()
            .find(|c| c.key() == b.key())
            .unwrap_or_else(|| panic!("{} missing from BENCH_pr6.json", b.key()));
        assert_eq!(c.outcome, "ok", "{} must still finish", b.key());
        assert!(
            c.wall_ms < b.wall_ms,
            "{}: PR 6 wall {:.3} ms must beat the PR 4 baseline {:.3} ms",
            b.key(),
            c.wall_ms,
            b.wall_ms
        );
        checked += 1;
    }
    assert!(checked >= 16, "expected 4 engines x 4 workloads, got {checked}");

    // And the logical-I/O floor the PR 5 test pins must still hold in the
    // committed trajectory itself.
    let b = base.iter().find(|c| c.key() == "web/Ext-SCC-Op").unwrap();
    let c = cand.iter().find(|c| c.key() == "web/Ext-SCC-Op").unwrap();
    assert!(
        c.logical_ios * 100 <= b.logical_ios * 85,
        "Ext-SCC-Op web logical I/Os {} must stay <= 85% of PR 4's {}",
        c.logical_ios,
        b.logical_ios
    );
}

#[test]
fn edge_growth_is_bounded_by_arboricity_bound() {
    // Theorem 5.4: new edges per iteration <= alpha_i * |E_i| and
    // alpha_i <= ceil(sqrt(|E_i|)). Assert the per-iteration bound on a real
    // run's report.
    let env = DiskEnv::new_temp(IoConfig::new(1 << 10, 32 << 10)).unwrap();
    let g = gen::web_like(&env, 4000, 4.0, 9).unwrap();
    let out = ExtScc::new(&env, ExtSccConfig::baseline()).run(&g).unwrap();
    for it in &out.report.contraction {
        let alpha_bound = (it.n_edges as f64).sqrt().ceil() as u64;
        assert!(
            it.edges_add <= alpha_bound * it.n_edges.max(1),
            "level {}: E_add = {} exceeds bound",
            it.level,
            it.edges_add
        );
    }
}

#[test]
fn faults_surface_everywhere() {
    // Inject failures at several points of each algorithm's life; every one
    // must return an error (never panic, never fabricate labels).
    let env = DiskEnv::new_temp(IoConfig::new(1 << 10, 32 << 10)).unwrap();
    let g = gen::web_like(&env, 3000, 4.0, 5).unwrap();

    // Calibrate: fault points at the start, middle, and near the end of a
    // clean run's actual I/O volume.
    let before = env.stats().snapshot();
    ExtScc::new(&env, ExtSccConfig::optimized())
        .run(&g)
        .unwrap();
    let clean_ios = env.stats().snapshot().since(&before).total_ios();
    assert!(clean_ios > 100, "calibration run too small: {clean_ios}");

    for after in [10u64, clean_ios / 2, clean_ios * 9 / 10] {
        env.inject_fault_after(after);
        let r = ExtScc::new(&env, ExtSccConfig::optimized()).run(&g);
        env.clear_fault();
        match r {
            Err(contract_expand::core::ExtSccError::Io(e)) => {
                assert!(e.to_string().contains("injected"))
            }
            Ok(_) => panic!("run must fail with injected fault at {after}"),
            Err(other) => panic!("unexpected error kind: {other}"),
        }
    }

    env.inject_fault_after(500);
    let r = dfs_scc(&env, &g, &DfsSccConfig::default());
    env.clear_fault();
    assert!(matches!(
        r,
        Err(contract_expand::dfs_scc::DfsSccError::Io(_))
    ));

    env.inject_fault_after(500);
    let r = contract_expand::em_scc::em_scc(
        &env,
        &g,
        &contract_expand::em_scc::EmSccConfig::default(),
    );
    env.clear_fault();
    assert!(matches!(r, Err(contract_expand::em_scc::EmSccError::Io(_))));
}

#[test]
fn label_files_are_complete_and_sorted() {
    let env = DiskEnv::new_temp(IoConfig::new(1 << 10, 32 << 10)).unwrap();
    let g = gen::web_like(&env, 3000, 4.0, 7).unwrap();
    let out = ExtScc::new(&env, ExtSccConfig::optimized()).run(&g).unwrap();
    assert_eq!(out.labels.len(), g.n_nodes());
    let all = out.labels.read_all().unwrap();
    for (i, l) in all.iter().enumerate() {
        assert_eq!(l.node as usize, i, "dense and sorted by node");
    }
}

#[test]
fn scratch_space_is_reclaimed() {
    // All intermediate files of a run must be deleted once results drop.
    let env = DiskEnv::new_temp(IoConfig::new(1 << 10, 32 << 10)).unwrap();
    let g = gen::web_like(&env, 2000, 4.0, 7).unwrap();
    let files_before = std::fs::read_dir(env.root()).unwrap().count();
    {
        let out = ExtScc::new(&env, ExtSccConfig::optimized()).run(&g).unwrap();
        drop(out);
    }
    let files_after = std::fs::read_dir(env.root()).unwrap().count();
    assert_eq!(
        files_before, files_after,
        "run must not leak scratch files"
    );
}
