//! Integration tests of the user-facing session layer: `SccSession` →
//! planner → `build_index` → persistent `SccIndex` queries.

use contract_expand::prelude::*;

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("scc-session-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Two 3-cycles bridged by one edge: components {0,1,2} and {3,4,5}.
fn two_triangles() -> Vec<(u32, u32)> {
    vec![(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 3)]
}

#[test]
fn planner_picks_the_regime_and_the_override_wins() {
    // Roomy: 6 nodes always fit 1 MiB.
    let cfg = IoConfig::new(4 << 10, 1 << 20);
    let session = SccSession::open(cfg, EnvOptions::pooled(&cfg))
        .unwrap()
        .source(GraphSource::in_memory(6, two_triangles()))
        .unwrap();
    let plan = session.plan().unwrap();
    assert_eq!(plan.engine, Engine::SemiScc);
    assert!(plan.reason.contains("fits"), "{}", plan.reason);
    assert_eq!(plan.predicted_passes, 0);

    // Tight: a 5000-node cycle's node state exceeds 16 KiB.
    let cfg = IoConfig::new(1 << 10, 16 << 10);
    let session = SccSession::open(cfg, EnvOptions::pooled(&cfg))
        .unwrap()
        .source(GraphSource::generator(|env| gen::cycle(env, 5000)))
        .unwrap();
    let plan = session.plan().unwrap();
    assert_eq!(plan.engine, Engine::ExtSccOp);
    assert!(plan.reason.contains("exceeds"), "{}", plan.reason);
    assert!(plan.predicted_passes >= 1);

    // The exact fit boundary: the planner agrees with `mem_required`.
    let n = 1000u64;
    for slack in [0i64, -1, 1] {
        let need = planner_for(IoConfig::new(512, 2 << 20))
            .semi_bytes_needed(n) as i64;
        let cfg = IoConfig::new(512, (need + slack) as usize);
        let plan = planner_for(cfg).plan(n);
        let expect_semi = slack >= 0;
        assert_eq!(
            plan.engine == Engine::SemiScc,
            expect_semi,
            "slack {slack}: {}",
            plan.reason
        );
    }

    // Forced engine: the planner records the override.
    let session = SccSession::open(
        IoConfig::new(4 << 10, 1 << 20),
        EnvOptions::unpooled(),
    )
    .unwrap()
    .source(GraphSource::in_memory(6, two_triangles()))
    .unwrap()
    .engine(Engine::ExtScc);
    let plan = session.plan().unwrap();
    assert_eq!(plan.engine, Engine::ExtScc);
    assert!(plan.reason.contains("override"), "{}", plan.reason);
}

#[test]
fn plan_and_run_without_a_source_fail_cleanly() {
    let cfg = IoConfig::new(4 << 10, 1 << 20);
    let session = SccSession::open(cfg, EnvOptions::unpooled()).unwrap();
    assert!(session.plan().is_err());
    assert!(session.graph().is_none());
    let err = session.run().unwrap_err();
    assert!(err.to_string().contains("no source"), "{err}");
}

#[test]
fn build_index_runs_the_planned_engine_and_round_trips() {
    let dir = scratch_dir("build");
    let idx_path = dir.join("g.sccidx");

    let cfg = IoConfig::new(1 << 10, 16 << 10);
    let mut session = SccSession::open(cfg, EnvOptions::pooled(&cfg))
        .unwrap()
        .source(GraphSource::generator(|env| {
            gen::web_like(env, 3000, 4.0, 17)
        }))
        .unwrap();
    let plan = session.plan().unwrap();
    assert_eq!(plan.engine, Engine::ExtSccOp, "3000 nodes exceed 16 KiB");

    let mut built = session.build_index(&idx_path).unwrap();
    assert_eq!(built.plan.engine, Engine::ExtSccOp);
    assert!(built.run.ios.total_ios() > 0);
    assert!(built.build_ios.total_ios() > 0, "index writing is counted");
    assert_eq!(built.index.n_sccs(), built.run.n_sccs);

    // The planned engine's partition equals the Tarjan oracle's.
    let g = session.graph().unwrap();
    let oracle = TarjanOracle.run(session.env(), g).unwrap();
    let lab = oracle.labeling(g.n_nodes()).unwrap();
    assert_eq!(built.run.n_sccs, oracle.n_sccs);
    for v in 0..g.n_nodes() as u32 {
        let same_as_oracle = built.index.component_of(v).unwrap();
        // Representatives are canonical (min member) in both labelings.
        assert_eq!(same_as_oracle, lab.rep[v as usize], "node {v}");
    }

    // Reopen the artifact from a completely fresh environment: queries are
    // answered without recomputing anything, and their I/O is counted.
    drop(built);
    let query_env = DiskEnv::new_temp(IoConfig::new(4 << 10, 8 << 10)).unwrap();
    let mut idx = SccIndex::open(&query_env, &idx_path).unwrap();
    let after_open = query_env.stats().snapshot();
    assert_eq!(idx.n_nodes(), 3000);
    let rep = idx.component_of(42).unwrap();
    assert!(idx.same_component(42, rep).unwrap());
    let spent = query_env.stats().snapshot().since(&after_open);
    assert!(
        (1..=4).contains(&spent.total_ios()),
        "three point lookups cost {} logical I/Os",
        spent.total_ios()
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn condensation_dag_is_embedded_on_request() {
    let dir = scratch_dir("dag");
    let idx_path = dir.join("g.sccidx");
    let cfg = IoConfig::new(4 << 10, 1 << 20);
    let mut session = SccSession::open(cfg, EnvOptions::pooled(&cfg))
        .unwrap()
        .source(GraphSource::in_memory(6, two_triangles()))
        .unwrap()
        .condensation(true);
    let mut built = session.build_index(&idx_path).unwrap();
    assert!(built.index.has_condensation());
    assert_eq!(built.index.n_sccs(), 2);
    let edges: Vec<Edge> = built
        .index
        .condensation_edges()
        .map(|e| e.unwrap())
        .collect();
    assert_eq!(edges, vec![Edge::new(0, 3)], "one quotient edge, rep ids");

    // Without the flag the section is absent.
    let mut plain = SccSession::open(cfg, EnvOptions::unpooled())
        .unwrap()
        .source(GraphSource::in_memory(6, two_triangles()))
        .unwrap()
        .build_index(&dir.join("plain.sccidx"))
        .unwrap();
    assert!(!plain.index.has_condensation());
    assert_eq!(plain.index.condensation_edges().count(), 0);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn text_and_binary_sources_agree() {
    let dir = scratch_dir("src");
    let text = dir.join("g.txt");
    std::fs::write(&text, "0 1\n1 0\n1 2\n2 1\n").unwrap();

    let cfg = IoConfig::new(4 << 10, 1 << 20);
    let session = SccSession::open(cfg, EnvOptions::unpooled())
        .unwrap()
        .source(GraphSource::text(&text))
        .unwrap();
    let ceg = dir.join("g.ceg");
    session.graph().unwrap().save_binary(&ceg).unwrap();
    let run_text = session.run().unwrap();

    let run_bin = SccSession::open(cfg, EnvOptions::unpooled())
        .unwrap()
        .source(GraphSource::binary(&ceg))
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(run_text.n_sccs, 1);
    assert_eq!(run_bin.n_sccs, 1);

    // `from_path` picks the format from the extension.
    assert!(matches!(GraphSource::from_path(&ceg), GraphSource::Binary(_)));
    assert!(matches!(GraphSource::from_path(&text), GraphSource::Text(_)));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn session_artifact_corruption_is_a_checksum_error_not_garbage() {
    let dir = scratch_dir("corrupt");
    let idx_path = dir.join("g.sccidx");
    let cfg = IoConfig::new(4 << 10, 1 << 20);
    SccSession::open(cfg, EnvOptions::unpooled())
        .unwrap()
        .source(GraphSource::in_memory(6, two_triangles()))
        .unwrap()
        .build_index(&idx_path)
        .unwrap();

    let mut bytes = std::fs::read(&idx_path).unwrap();
    // Flip a byte inside the labels section (first payload page).
    let at = 4096 + 3;
    bytes[at] ^= 0x01;
    std::fs::write(&idx_path, &bytes).unwrap();

    let fresh = DiskEnv::new_temp(IoConfig::new(4 << 10, 8 << 10)).unwrap();
    let err = SccIndex::open(&fresh, &idx_path).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    assert!(err.to_string().contains("checksum"), "{err}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn strict_budget_session_still_matches_the_oracle() {
    // The satellite regime: pool frames come out of M, not on top of it.
    let (cfg, opts) = EnvOptions::strict(64 << 10, 1 << 10);
    assert_eq!(opts.cache_blocks * cfg.block_size + cfg.mem_budget, 64 << 10);
    let session = SccSession::open(cfg, opts)
        .unwrap()
        .source(GraphSource::generator(|env| {
            gen::permuted_cycle(env, 8000, 3)
        }))
        .unwrap();
    assert_eq!(session.plan().unwrap().engine, Engine::ExtSccOp);
    let run = session.run().unwrap();
    assert_eq!(run.n_sccs, 1, "one 8000-cycle");
    assert_eq!(
        session.env().options().cache_blocks,
        opts.cache_blocks,
        "the environment honours the split"
    );
}
