//! Gate over the committed `BENCH_pr9.json` delta-maintenance trajectory
//! (PR 9's incremental index path): the file must exist, carry all three
//! workload families, and show the sublinearity claim — the mean logical
//! I/O per single-edge update staying far below the logical I/O floor of
//! rebuilding the artifact from scratch. Wall-clock floors are
//! deliberately loose (the committed file may come from a slow shared
//! container); the I/O ratios are deterministic and gated tightly.

use ce_bench::trajectory::parse_delta_cells;

const BENCH: &str = include_str!("../BENCH_pr9.json");

#[test]
fn delta_trajectory_is_complete_and_sane() {
    let cells = parse_delta_cells(BENCH);
    let families: Vec<&str> = cells.iter().map(|c| c.family.as_str()).collect();
    for want in ["cycle-stitch", "churn", "grow-cut"] {
        assert!(
            families.contains(&want),
            "missing family {want}; have {families:?}"
        );
    }
    for c in &cells {
        assert!(c.updates >= 200, "{}: only {} updates", c.family, c.updates);
        assert!(
            c.updates_per_sec.is_finite() && c.updates_per_sec > 0.0,
            "{}: bad updates_per_sec {}",
            c.family,
            c.updates_per_sec
        );
        assert!(
            c.ios_per_update.is_finite() && c.ios_per_update > 0.0,
            "{}: bad ios_per_update {}",
            c.family,
            c.ios_per_update
        );
        assert!(c.rebuild_ios > 0, "{}: no rebuild floor recorded", c.family);
        assert!(
            c.wall_ms.is_finite() && c.wall_ms > 0.0,
            "{}: bad wall {}",
            c.family,
            c.wall_ms
        );
    }
    // The streams performed real merges somewhere — a trajectory without
    // any would not have exercised the expensive path at all.
    assert!(cells.iter().map(|c| c.merges).sum::<u64>() > 0);
}

#[test]
fn per_update_io_stays_far_below_the_rebuild_floor() {
    // The deterministic sublinearity claim: maintaining the index through
    // the delta engine costs at least 5x less logical I/O per update than
    // even a best-case from-scratch rebuild (labels + condensation +
    // artifact, SCC computation free). The committed trajectory clears
    // this by an order of magnitude on every family; 5x leaves headroom
    // for workload-mix drift without letting the claim quietly erode.
    for c in parse_delta_cells(BENCH) {
        assert!(
            c.ios_per_update * 5.0 < c.rebuild_ios as f64,
            "{}: {} I/Os per update is not sublinear against a {}-I/O rebuild",
            c.family,
            c.ios_per_update,
            c.rebuild_ios
        );
    }
}

#[test]
fn update_throughput_clears_a_conservative_floor() {
    // Each update pays a journal append, a header patch and a
    // copy-on-write generation fork; even slow shared CI containers clear
    // ten updates per second by well over an order of magnitude.
    for c in parse_delta_cells(BENCH) {
        assert!(
            c.updates_per_sec >= 10.0,
            "{}: {} updates/s below floor",
            c.family,
            c.updates_per_sec
        );
    }
}
