//! Integration gates for incremental index maintenance: the session-level
//! `apply_delta` / `compact_index` surface, the ce-harness delta-stream
//! differential matrix, the O(1)-page cost pins, and a crash-safety smoke
//! under injected I/O faults.

use contract_expand::prelude::*;

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("scc-delta-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Two 3-cycles bridged by one edge: components {0,1,2} and {3,4,5}.
fn two_triangles() -> Vec<(u32, u32)> {
    vec![(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 3)]
}

/// A session over `two_triangles` with a condensation-bearing index built
/// at `path`.
fn session_with_index(path: &std::path::Path) -> SccSession {
    let cfg = IoConfig::new(4 << 10, 1 << 20);
    let mut session = SccSession::open(cfg, EnvOptions::pooled(&cfg))
        .unwrap()
        .source(GraphSource::in_memory(6, two_triangles()))
        .unwrap()
        .condensation(true);
    session.build_index(path).unwrap();
    session
}

#[test]
fn session_applies_deltas_and_compacts() {
    let dir = scratch_dir("session");
    let idx_path = dir.join("g.sccidx");
    let session = session_with_index(&idx_path);

    // Cycle-creating insert: 5 -> 0 closes {0,1,2} <-> {3,4,5}.
    let report = session
        .apply_delta(&DeltaBatch::new().add(5, 0))
        .unwrap();
    assert_eq!(report.generation, 1);
    assert_eq!(report.merges, 1);
    assert_eq!(report.merged_components, 2);
    assert_eq!(report.merged_nodes, 6);

    let mut eng = session.delta_engine().unwrap();
    assert_eq!(eng.n_sccs(), 1);
    assert!(eng.same_component(0, 5).unwrap());

    // Intra-component delete dirties; compact re-verifies. 2 -> 3 was the
    // only path from {0,1,2} into {3,4,5}, so removing it splits the
    // merged component back apart.
    let report = session
        .apply_delta(&DeltaBatch::new().remove(2, 3))
        .unwrap();
    assert_eq!(report.dirty_marked, 1);
    let compacted = session.compact_index().unwrap();
    assert_eq!(compacted.components_reverified, 1);
    assert_eq!(compacted.components_after, 2);

    let mut eng = session.delta_engine().unwrap();
    assert!(!eng.same_component(0, 5).unwrap());
    assert_eq!(eng.component_of(4).unwrap(), 3);
    assert_eq!(eng.n_dirty(), 0);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn delta_without_index_or_dag_fails_cleanly() {
    let cfg = IoConfig::new(4 << 10, 1 << 20);

    // No index attached at all.
    let session = SccSession::open(cfg, EnvOptions::unpooled())
        .unwrap()
        .source(GraphSource::in_memory(6, two_triangles()))
        .unwrap();
    let err = session.apply_delta(&DeltaBatch::new().add(0, 3)).unwrap_err();
    assert!(err.to_string().contains("no index"), "{err}");

    // Index built without the condensation DAG section: the error names
    // the CLI flag that fixes it.
    let dir = scratch_dir("nodag");
    let mut session = SccSession::open(cfg, EnvOptions::unpooled())
        .unwrap()
        .source(GraphSource::in_memory(6, two_triangles()))
        .unwrap();
    session.build_index(&dir.join("plain.sccidx")).unwrap();
    let err = session.apply_delta(&DeltaBatch::new().add(0, 3)).unwrap_err();
    assert!(err.to_string().contains("--with-condensation"), "{err}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn differential_matrix_200_steps_across_three_families() {
    let rows = contract_expand::harness::run_delta_matrix(200, 0x9e37).unwrap();
    assert_eq!(rows.len(), 3, "three workload families");
    for row in &rows {
        assert!(row.ok(), "{row}");
        assert_eq!(row.steps, 200);
        assert!(row.adds > 0 && row.removes > 0, "{row}");
        // Sublinear maintenance: non-merge steps never rewrite the label
        // section (constant pages: journal + header + DAG/dirty).
        assert!(
            row.max_metadata_write_ios <= 8,
            "metadata step wrote {} pages: {row}",
            row.max_metadata_write_ios
        );
    }
    // The taxonomy is exercised: the streams performed real merges and
    // real dirty-marking deletions somewhere in the matrix.
    assert!(rows.iter().map(|r| r.merges).sum::<u64>() > 0);
    assert!(rows.iter().map(|r| r.dirty_marked).sum::<u64>() > 0);
}

#[test]
fn metadata_only_insert_cost_is_independent_of_graph_size() {
    // The same intra-component insert against a 12-node and a 6000-node
    // graph must cost the same page writes: the artifact sizes differ by
    // three orders of magnitude, the maintenance cost must not.
    let mut write_costs = Vec::new();
    for n in [12u64, 6000] {
        let dir = scratch_dir(&format!("o1-{n}"));
        let idx_path = dir.join("g.sccidx");
        let cfg = IoConfig::new(4 << 10, 1 << 20);
        // A triangle 0->1->2->0 plus n-3 isolated nodes.
        let mut session = SccSession::open(cfg, EnvOptions::pooled(&cfg))
            .unwrap()
            .source(GraphSource::in_memory(n, vec![(0, 1), (1, 2), (2, 0)]))
            .unwrap()
            .condensation(true);
        session.build_index(&idx_path).unwrap();
        let report = session
            .apply_delta(&DeltaBatch::new().add(0, 2))
            .unwrap();
        assert_eq!(report.intra_added, 1);
        assert_eq!(report.merges, 0);
        assert_eq!(report.label_pages_rewritten, 0);
        write_costs.push(report.ios.seq_writes + report.ios.rand_writes);
        std::fs::remove_dir_all(&dir).ok();
    }
    assert_eq!(
        write_costs[0], write_costs[1],
        "metadata-only insert cost grew with graph size: {write_costs:?}"
    );
}

#[test]
fn merge_rewrites_only_label_pages_owning_affected_nodes() {
    // 4096-byte pages hold 1024 labels. 3000 nodes -> 3 label pages; a
    // merge of two components living entirely in page 0 must rewrite
    // exactly one label page.
    let dir = scratch_dir("pages");
    let idx_path = dir.join("g.sccidx");
    let cfg = IoConfig::new(4 << 10, 1 << 20);
    let mut edges = vec![(0u32, 1u32), (1, 0), (2, 3), (3, 2), (1, 2)];
    // Anchor components on the later pages so the artifact genuinely has
    // multi-page label state that a correct merge must NOT touch.
    edges.extend([(2000, 2001), (2001, 2000), (2900, 2901), (2901, 2900)]);
    let mut session = SccSession::open(cfg, EnvOptions::pooled(&cfg))
        .unwrap()
        .source(GraphSource::in_memory(3000, edges))
        .unwrap()
        .condensation(true);
    session.build_index(&idx_path).unwrap();

    let report = session
        .apply_delta(&DeltaBatch::new().add(3, 0))
        .unwrap();
    assert_eq!(report.merges, 1);
    assert_eq!(
        report.label_pages_rewritten, 1,
        "only the page owning nodes 0..3 changes"
    );

    let mut eng = session.delta_engine().unwrap();
    assert!(eng.same_component(0, 3).unwrap());
    assert!(!eng.same_component(0, 2000).unwrap());
    assert_eq!(eng.component_of(2900).unwrap(), 2900);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fault_mid_apply_leaves_the_previous_generation_queryable() {
    // Crash-safety smoke: inject a physical-transfer fault at several
    // points inside a merging apply. Whenever the apply errors, the
    // artifact on disk must still open through full validation at the old
    // generation and answer queries; a retry on a fresh engine must
    // succeed and land the new generation.
    let dir = scratch_dir("fault");
    for k in [1u64, 2, 4, 8] {
        let idx_path = dir.join(format!("g{k}.sccidx"));
        let session = session_with_index(&idx_path);
        let env = session.env();

        env.inject_fault_after(k);
        let attempt = session.apply_delta(&DeltaBatch::new().add(5, 0));
        env.clear_fault();

        match attempt {
            Err(_) => {
                // Old generation intact and queryable.
                let mut eng = session.delta_engine().unwrap();
                assert_eq!(eng.generation(), 0, "fault point {k}");
                assert!(!eng.same_component(0, 5).unwrap());
                drop(eng);
                // Retry goes through.
                let report = session.apply_delta(&DeltaBatch::new().add(5, 0)).unwrap();
                assert_eq!(report.generation, 1);
            }
            Ok(report) => {
                assert_eq!(report.generation, 1, "fault point {k}");
            }
        }
        let mut eng = session.delta_engine().unwrap();
        assert!(eng.same_component(0, 5).unwrap(), "fault point {k}");
    }
    std::fs::remove_dir_all(&dir).ok();
}
