//! Cross-crate end-to-end tests: every algorithm in the workspace must agree
//! with in-memory Tarjan — and therefore with each other — on shared
//! workloads. All dispatch goes through the unified `SccAlgorithm` trait.

use contract_expand::em_scc::{em_scc, EmSccConfig};
use contract_expand::graph::csr::CsrGraph;
use contract_expand::graph::labels::same_partition;
use contract_expand::graph::tarjan::tarjan_scc;
use contract_expand::harness::full_registry;
use contract_expand::prelude::*;

fn tight_env() -> DiskEnv {
    DiskEnv::new_temp(IoConfig::new(1 << 10, 32 << 10)).unwrap()
}

fn truth(g: &EdgeListGraph) -> Vec<u32> {
    let edges = g.edges_in_memory().unwrap();
    tarjan_scc(&CsrGraph::from_edges(g.n_nodes(), &edges)).comp
}

#[test]
fn all_algorithms_agree_on_web_graph() {
    let env = tight_env();
    let g = gen::web_like(&env, 3000, 4.0, 11).unwrap();

    // The extended registry — oracles, both Ext-SCC variants, both semi
    // variants, both DFS variants, EM-SCC — graded by the harness itself
    // (partition equivalence, invariants; EM-SCC may DNF).
    let verdicts =
        contract_expand::harness::verify_graph_with(&env, &g, &full_registry()).unwrap();
    assert_eq!(verdicts.len(), full_registry().len());
    for v in &verdicts {
        assert!(v.ok(), "{}: {:?}", v.algo, v.detail);
    }
}

#[test]
fn all_semi_variants_agree_inside_ext_scc() {
    let env = tight_env();
    let g = gen::web_like(&env, 2500, 4.0, 13).unwrap();
    let t = truth(&g);
    for semi in [SemiSccKind::Coloring, SemiSccKind::SpanningTree] {
        let mut cfg = ExtSccConfig::optimized();
        cfg.semi = semi;
        let out = ExtScc::new(&env, cfg).run(&g).unwrap();
        let lab = SccLabeling::from_file(&out.labels, g.n_nodes()).unwrap();
        assert!(same_partition(&lab.rep, &t), "semi {semi:?}");
    }
}

#[test]
fn em_scc_agrees_when_it_terminates() {
    // Sequential-id disjoint cycles: high chunk locality, EM-SCC succeeds.
    let env = tight_env();
    let g = gen::disjoint_cycles(&env, &[64; 50]).unwrap();
    let t = truth(&g);
    let (labels, report) = em_scc(&env, &g, &EmSccConfig::default()).unwrap();
    let lab = SccLabeling::from_file(&labels, g.n_nodes()).unwrap();
    assert!(same_partition(&lab.rep, &t));
    assert_eq!(report.n_sccs, 50);

    let out = ExtScc::new(&env, ExtSccConfig::optimized()).run(&g).unwrap();
    assert_eq!(out.report.n_sccs, 50);
}

#[test]
fn table1_datasets_recover_planted_components() {
    for dataset in gen::Dataset::ALL {
        let env = tight_env();
        let spec = gen::SyntheticSpec::table1(dataset, 4000, 4.0, 21);
        let g = gen::planted_scc_graph(&env, &spec).unwrap();
        let out = ExtScc::new(&env, ExtSccConfig::optimized()).run(&g).unwrap();
        let lab = SccLabeling::from_file(&out.labels, g.n_nodes()).unwrap();
        assert!(same_partition(&lab.rep, &truth(&g)), "{dataset:?}");
        // Acyclic filler: the planted components are exactly the non-trivial
        // SCCs.
        let expected: u64 = spec.planted.iter().map(|p| p.count as u64).sum();
        let nontrivial = lab
            .size_histogram()
            .into_iter()
            .filter(|&s| s > 1)
            .count() as u64;
        assert_eq!(nontrivial, expected, "{dataset:?}");
    }
}

#[test]
fn text_roundtrip_pipeline() {
    // Text file -> EdgeListGraph -> Ext-SCC -> labels.
    let env = tight_env();
    let path = env.root().join("input.txt");
    std::fs::write(&path, "# demo\n0 1\n1 2\n2 0\n2 3\n3 4\n4 3\n").unwrap();
    let g = EdgeListGraph::from_text(&env, &path, None).unwrap();
    let out = ExtScc::new(&env, ExtSccConfig::optimized()).run(&g).unwrap();
    assert_eq!(out.report.n_sccs, 2);
    let lab = SccLabeling::from_file(&out.labels, g.n_nodes()).unwrap();
    assert_eq!(lab.rep[0], lab.rep[1]);
    assert_eq!(lab.rep[3], lab.rep[4]);
    assert_ne!(lab.rep[0], lab.rep[3]);
}

#[test]
fn condensation_of_ext_scc_output_is_acyclic() {
    let env = tight_env();
    let g = gen::web_like(&env, 2000, 5.0, 3).unwrap();
    let out = ExtScc::new(&env, ExtSccConfig::optimized()).run(&g).unwrap();
    let lab = SccLabeling::from_file(&out.labels, g.n_nodes()).unwrap();
    let edges = g.edges_in_memory().unwrap();
    let (n, _, dag_edges) = lab.condense(&edges);
    // The condensation must have no cycles: all its SCCs are singletons.
    let dag = CsrGraph::from_edges(n as u64, &dag_edges);
    assert_eq!(tarjan_scc(&dag).count as usize, n);
}
