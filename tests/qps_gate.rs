//! Gate over the committed `BENCH_pr8.json` QPS trajectory (PR 8's
//! concurrent read path): the file must exist, carry the full
//! threads × cache grid, and — **when it was recorded on a host with at
//! least 4 CPUs** — show warm 4-thread throughput at least 2x warm
//! single-thread. The `host_cpus` gate is the point, not a loophole: on a
//! 1-CPU container the 4-thread ratio measures the scheduler (it can
//! legitimately be *below* 1x), so asserting scaling there would pin
//! noise. The structural assertions and the absolute warm single-thread
//! floor run unconditionally.

use ce_bench::trajectory::{parse_host_cpus, parse_qps_cells};

const BENCH: &str = include_str!("../BENCH_pr8.json");

#[test]
fn qps_grid_is_complete_and_sane() {
    let cells = parse_qps_cells(BENCH);
    let keys: Vec<String> = cells.iter().map(|c| c.key()).collect();
    for want in ["1t/cold", "1t/warm", "4t/cold", "4t/warm"] {
        assert!(keys.iter().any(|k| k == want), "missing cell {want}; have {keys:?}");
    }
    for c in &cells {
        assert!(c.qps.is_finite() && c.qps > 0.0, "{}: bad qps {}", c.key(), c.qps);
        assert!(
            c.wall_ms.is_finite() && c.wall_ms > 0.0,
            "{}: bad wall {}",
            c.key(),
            c.wall_ms
        );
    }
    assert!(
        parse_host_cpus(BENCH).is_some(),
        "BENCH_pr8.json must record host_cpus; scaling gates depend on it"
    );
}

#[test]
fn warm_single_thread_throughput_clears_the_floor() {
    // Point queries on a warm pool are pure in-memory work (hash probe +
    // 4-byte copy); even a heavily shared CI container clears 50k qps by
    // orders of magnitude. A committed file below this means the serving
    // path regressed catastrophically or the bench recorded garbage.
    let cells = parse_qps_cells(BENCH);
    let warm1 = cells
        .iter()
        .find(|c| c.key() == "1t/warm")
        .expect("1t/warm cell present (asserted above)");
    assert!(warm1.qps >= 50_000.0, "warm single-thread qps {} below floor", warm1.qps);
}

#[test]
fn multithread_scaling_holds_where_the_host_can_show_it() {
    let host_cpus = parse_host_cpus(BENCH).expect("host_cpus recorded");
    if host_cpus < 4 {
        eprintln!(
            "skipping scaling assertion: BENCH_pr8.json was recorded on \
             {host_cpus} CPU(s)"
        );
        return;
    }
    let cells = parse_qps_cells(BENCH);
    let qps = |key: &str| cells.iter().find(|c| c.key() == key).expect(key).qps;
    let (one, four) = (qps("1t/warm"), qps("4t/warm"));
    assert!(
        four >= 2.0 * one,
        "warm 4-thread {four} qps < 2x warm 1-thread {one} qps on a \
         {host_cpus}-CPU host"
    );
}
