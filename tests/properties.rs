//! Property-based tests (proptest) on the paper's core invariants.
//!
//! Graph strategy: arbitrary directed multigraphs with up to 64 nodes and
//! 250 edges (duplicates and self-loops included — the external pipeline must
//! tolerate both). Each property is checked in both Ext-SCC modes.

use proptest::prelude::*;

use contract_expand::core::invariants::check_contraction;
use contract_expand::core::{
    build_orders, get_e, get_v, ExtScc, ExtSccConfig, GetEOptions, GetVOptions, OrderKind,
};
use contract_expand::extmem::{sort_by_key, sort_dedup_by_key};
use contract_expand::graph::csr::CsrGraph;
use contract_expand::graph::labels::same_partition;
use contract_expand::graph::tarjan::tarjan_scc;
use contract_expand::prelude::*;

fn tiny_env() -> DiskEnv {
    // 256-byte blocks: even 60-node graphs span multiple blocks.
    DiskEnv::new_temp(IoConfig::new(256, 4 << 10)).unwrap()
}

fn arb_graph() -> impl Strategy<Value = (u32, Vec<(u32, u32)>)> {
    (2u32..64).prop_flat_map(|n| {
        let edges = prop::collection::vec((0..n, 0..n), 0..250);
        (Just(n), edges)
    })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64, .. ProptestConfig::default()
    })]

    /// End to end: Ext-SCC equals Tarjan in both modes, on any multigraph.
    #[test]
    fn ext_scc_matches_tarjan((n, edge_list) in arb_graph()) {
        let env = tiny_env();
        let g = EdgeListGraph::from_slice(&env, n as u64, &edge_list).unwrap();
        let edges = g.edges_in_memory().unwrap();
        let t = tarjan_scc(&CsrGraph::from_edges(n as u64, &edges));
        for cfg in [ExtSccConfig::baseline(), ExtSccConfig::optimized()] {
            let out = ExtScc::new(&env, cfg).run(&g).unwrap();
            let lab = SccLabeling::from_file(&out.labels, n as u64).unwrap();
            prop_assert!(same_partition(&lab.rep, &t.comp));
            prop_assert_eq!(out.report.n_sccs, t.count as u64);
            prop_assert!(lab.reps_are_members());
        }
    }

    /// Differential property, via the harness entry point: on any multigraph
    /// and under any storage `EnvOptions` (backend × pool size), every
    /// registered `SccAlgorithm` yields the same normalized partition as the
    /// Tarjan oracle (EM-SCC may report a structured DNF instead).
    #[test]
    fn all_algorithms_match_tarjan_under_any_storage(
        (n, edge_list) in arb_graph(),
        mem_backend in any::<bool>(),
        cache_blocks in 0usize..8,
    ) {
        let opts = EnvOptions::default()
            .with_backend(if mem_backend { BackendKind::Mem } else { BackendKind::File })
            .with_cache_blocks(cache_blocks);
        let env = DiskEnv::new_temp_with(IoConfig::new(256, 4 << 10), opts).unwrap();
        let g = EdgeListGraph::from_slice(&env, n as u64, &edge_list).unwrap();
        let verdicts = contract_expand::harness::verify_graph(&env, &g).unwrap();
        for v in &verdicts {
            prop_assert!(v.ok(), "{} under {:?}: {:?}", v.algo, opts, v.detail);
        }
    }

    /// One contraction round satisfies contractible/recoverable/preservable
    /// (Lemmas 5.1-5.3) in baseline mode, and the relaxed variants with
    /// Type-1 enabled.
    #[test]
    fn contraction_invariants_hold((n, edge_list) in arb_graph()) {
        let env = tiny_env();
        let g = EdgeListGraph::from_slice(&env, n as u64, &edge_list).unwrap();
        for (type1, order) in [
            (false, OrderKind::Degree),
            (true, OrderKind::DegreeProduct),
        ] {
            let orders = build_orders(&env, g.edges(), true).unwrap();
            let (cover, _) = get_v(&env, &orders, &GetVOptions {
                order,
                type1,
                type2_capacity: 16,
            }).unwrap();
            let ge = get_e(&env, &orders, &cover, &GetEOptions {
                filter_endpoints: type1,
                drop_self_loops: true,
            }).unwrap();
            let violations =
                check_contraction(n as u64, &orders.ein, &cover, &ge.edges, type1).unwrap();
            prop_assert!(violations.is_empty(), "type1={}: {:?}", type1, violations);
        }
    }

    /// The cover never contains the `>`-smallest incident node (Lemma 5.2's
    /// witness), so contraction always makes progress.
    #[test]
    fn cover_is_strictly_smaller((n, edge_list) in arb_graph()) {
        prop_assume!(!edge_list.is_empty());
        let env = tiny_env();
        let g = EdgeListGraph::from_slice(&env, n as u64, &edge_list).unwrap();
        let orders = build_orders(&env, g.edges(), true).unwrap();
        let (cover, _) = get_v(&env, &orders, &GetVOptions::default()).unwrap();
        let incident: std::collections::HashSet<u32> = edge_list
            .iter()
            .flat_map(|&(u, v)| [u, v])
            .collect();
        prop_assert!((cover.len() as usize) < incident.len().max(1));
    }

    /// External sort sorts, preserves multiplicity; sort+dedup yields the set.
    #[test]
    fn sort_laws(mut items in prop::collection::vec(any::<u32>(), 0..400)) {
        let env = tiny_env();
        let f = env.file_from_slice("in", &items).unwrap();
        let sorted = sort_by_key(&env, &f, "s", |&x| x).unwrap().read_all().unwrap();
        let deduped = sort_dedup_by_key(&env, &f, "d", |&x| x).unwrap().read_all().unwrap();
        items.sort_unstable();
        prop_assert_eq!(&sorted, &items);
        items.dedup();
        prop_assert_eq!(&deduped, &items);
    }

    /// Parallel sort is invisible to the I/O model: on any input, any block
    /// geometry, and any worker-thread count, the sorted bytes AND the full
    /// six-counter logical `IoSnapshot` are bit-identical to the sequential
    /// run — workers may only change wall time, never what the model
    /// charges.
    #[test]
    fn parallel_sort_equals_sequential_sort(
        items in prop::collection::vec(any::<u32>(), 0..1500),
        block_pow in 6u32..9,          // 64..256-byte blocks
        budget_blocks in 4usize..16,   // 256 B .. 4 KiB budgets
        threads in 2usize..5,
    ) {
        let block = 1usize << block_pow;
        let cfg = IoConfig::new(block, block * budget_blocks);
        let mut outputs = Vec::new();
        for t in [1usize, threads] {
            let env = DiskEnv::new_temp_with(
                cfg,
                EnvOptions::default().with_threads(t),
            ).unwrap();
            let f = env.file_from_slice("in", &items).unwrap();
            let before = env.stats().snapshot();
            let sorted = sort_by_key(&env, &f, "s", |&x| x).unwrap();
            let delta = env.stats().snapshot().since(&before);
            outputs.push((sorted.read_all().unwrap(), delta));
        }
        let (seq_bytes, seq_stats) = &outputs[0];
        let (par_bytes, par_stats) = &outputs[1];
        prop_assert_eq!(seq_bytes, par_bytes, "output differs at threads={}", threads);
        prop_assert_eq!(seq_stats, par_stats, "logical I/O differs at threads={}", threads);
    }

    /// The persistent `SccIndex` round-trips: build from any multigraph's
    /// Tarjan labeling, close, reopen in a fresh environment, and every
    /// `component_of` / `component_size` / `same_component` answer matches
    /// the oracle.
    #[test]
    fn scc_index_roundtrips_against_tarjan((n, edge_list) in arb_graph()) {
        static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let env = tiny_env();
        let g = EdgeListGraph::from_slice(&env, n as u64, &edge_list).unwrap();
        let edges = g.edges_in_memory().unwrap();
        let truth = tarjan_scc(&CsrGraph::from_edges(n as u64, &edges));
        let reps = truth.canonical_reps();

        let run = TarjanOracle.run(&env, &g).unwrap();
        let path = std::env::temp_dir().join(format!(
            "ce-prop-idx-{}-{}.sccidx",
            std::process::id(),
            NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        let n_sccs = SccIndex::build(&env, &path, &run.labels, n as u64, None).unwrap();
        prop_assert_eq!(n_sccs, truth.count as u64);

        // Reopen in a fresh environment: nothing cached from the build.
        let fresh = tiny_env();
        let mut idx = SccIndex::open(&fresh, &path).unwrap();
        prop_assert_eq!(idx.n_nodes(), n as u64);
        prop_assert_eq!(idx.n_sccs(), truth.count as u64);
        let mut size_of: std::collections::HashMap<u32, u64> = Default::default();
        for &r in &reps {
            *size_of.entry(r).or_insert(0) += 1;
        }
        for v in 0..n {
            prop_assert_eq!(idx.component_of(v).unwrap(), reps[v as usize], "node {}", v);
            prop_assert_eq!(
                idx.component_size(v).unwrap(),
                size_of[&reps[v as usize]],
                "size of node {}'s component", v
            );
        }
        for (u, v) in [(0, n - 1), (n / 2, n / 2), (1 % n, n / 3)] {
            prop_assert_eq!(
                idx.same_component(u, v).unwrap(),
                reps[u as usize] == reps[v as usize]
            );
        }
        std::fs::remove_file(&path).unwrap();
    }

    /// Observability is free: running Ext-SCC with tracing enabled (an
    /// in-memory span sink) and with the disabled-path [`NullSink`]
    /// installed yields bit-identical logical `IoSnapshot`s and identical
    /// partitions on any multigraph. Spans only *read* the counters.
    #[test]
    fn tracing_is_io_transparent((n, edge_list) in arb_graph()) {
        use std::rc::Rc;
        use contract_expand::obs;

        let mut outputs = Vec::new();
        for traced in [false, true] {
            let env = tiny_env();
            let g = EdgeListGraph::from_slice(&env, n as u64, &edge_list).unwrap();
            let sink: Rc<dyn obs::Sink> = if traced {
                Rc::new(obs::MemSink::new())
            } else {
                Rc::new(obs::NullSink)
            };
            let guard = obs::install(sink);
            let out = ExtScc::new(&env, ExtSccConfig::optimized()).run(&g).unwrap();
            drop(guard);
            let lab = SccLabeling::from_file(&out.labels, n as u64).unwrap();
            outputs.push((out.report.total_ios, out.report.n_sccs, lab.rep));
        }
        let (null_ios, null_sccs, null_rep) = &outputs[0];
        let (mem_ios, mem_sccs, mem_rep) = &outputs[1];
        prop_assert_eq!(null_ios, mem_ios, "logical I/O must be sink-independent");
        prop_assert_eq!(null_sccs, mem_sccs);
        prop_assert!(same_partition(null_rep, mem_rep));
    }

    /// BRT behaves like a multimap under insert/extract/retire.
    #[test]
    fn brt_model(ops in prop::collection::vec((0u8..3, 0u32..16, any::<u32>()), 1..300)) {
        use std::collections::HashMap;
        let env = tiny_env();
        let mut brt = contract_expand::extmem::brt::Brt::new(&env, "m");
        let mut model: HashMap<u32, Vec<u32>> = HashMap::new();
        let mut retired: std::collections::HashSet<u32> = Default::default();
        for (op, key, value) in ops {
            match op {
                0 => {
                    brt.insert(key, value).unwrap();
                    if !retired.contains(&key) {
                        model.entry(key).or_default().push(value);
                    }
                    // Items inserted after retirement may be dropped at any
                    // merge; the DFS client never does this, so the model
                    // skips them too.
                }
                1 => {
                    let mut got = Vec::new();
                    brt.extract(key, &mut got).unwrap();
                    got.sort_unstable();
                    let mut want = if retired.contains(&key) {
                        Vec::new()
                    } else {
                        model.get(&key).cloned().unwrap_or_default()
                    };
                    want.sort_unstable();
                    if !retired.contains(&key) {
                        prop_assert_eq!(got, want, "extract({})", key);
                    }
                }
                _ => {
                    brt.retire(key);
                    retired.insert(key);
                    model.remove(&key);
                }
            }
        }
    }
}
