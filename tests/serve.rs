//! Concurrent-serving stress tests: N reader threads hammer one shared
//! index with deterministic mixed workloads and every answer is checked
//! against the in-memory Tarjan oracle — *and* every query's logical I/O
//! delta is checked bit-for-bit against the owned single-reader path.
//!
//! The logical-parity assertion is the load-bearing one: the shared read
//! path ([`SccIndexReader`]) must price queries in the paper's I/O model
//! exactly like the owned [`SccIndex`] no matter how many threads share
//! the pool, or the model's numbers would stop being reproducible the
//! moment serving went concurrent.

use contract_expand::harness::build_query_index;
use contract_expand::prelude::*;

/// Small blocks so the label section spans many pages and batches
/// genuinely straddle page boundaries.
const BLOCK: usize = 512;
const N_NODES: u32 = 2000;
const THREADS: usize = 4;
const QUERIES: usize = 800;

/// One deterministic mixed query; mirrors the xorshift workload the
/// `scc serve` self-test replays.
enum Q {
    Point(u32),
    Same(u32, u32),
    Size(u32),
    Batch(Vec<u32>),
}

fn xorshift(x: &mut u64) -> u64 {
    *x ^= *x << 13;
    *x ^= *x >> 7;
    *x ^= *x << 17;
    *x
}

fn workload(seed: u64, n: usize) -> Vec<Q> {
    let mut x = seed | 1;
    let node = |x: &mut u64| (xorshift(x) % N_NODES as u64) as u32;
    (0..n)
        .map(|_| match xorshift(&mut x) % 10 {
            0..=5 => Q::Point(node(&mut x)),
            6 | 7 => Q::Same(node(&mut x), node(&mut x)),
            8 => Q::Size(node(&mut x)),
            _ => Q::Batch((0..12).map(|_| node(&mut x)).collect()),
        })
        .collect()
}

/// Builds the scratch index + oracle the tests share.
fn fixture(env: &DiskEnv) -> (std::path::PathBuf, Vec<u32>) {
    let path = env.root().join("serve-stress.sccidx");
    let reps = build_query_index(env, &path, N_NODES, 0xCE11).expect("index build");
    (path, reps)
}

#[test]
fn concurrent_readers_match_oracle_and_owned_logical_costs() {
    let env = DiskEnv::new_temp(IoConfig::new(BLOCK, 4 << 20)).unwrap();
    let (path, reps) = fixture(&env);
    let mut sizes = std::collections::HashMap::<u32, u64>::new();
    for &r in &reps {
        *sizes.entry(r).or_default() += 1;
    }
    let queries = workload(0xCE11, QUERIES);

    // Owned baseline: replay the workload once, recording each query's
    // logical delta from the environment's counters.
    let mut owned = SccIndex::open(&env, &path).unwrap();
    let mut owned_deltas = Vec::with_capacity(queries.len());
    let mut last = env.stats().snapshot();
    for q in &queries {
        match q {
            Q::Point(u) => drop(owned.component_of(*u).unwrap()),
            Q::Same(u, v) => drop(owned.same_component(*u, *v).unwrap()),
            Q::Size(u) => drop(owned.component_size(*u).unwrap()),
            Q::Batch(us) => drop(owned.component_of_many(us).unwrap()),
        }
        let now = env.stats().snapshot();
        owned_deltas.push(now.since(&last));
        last = now;
    }

    // Shared path: every thread replays the *same* workload on its own
    // clone concurrently. Logical counters are per-handle, so each thread
    // must observe exactly the owned deltas even while the physical pool
    // is being shared (and contended) by the others.
    let reader = SccIndex::open_shared(&path, 64).unwrap();
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let handle = reader.clone();
            let (queries, reps, sizes, owned_deltas) = (&queries, &reps, &sizes, &owned_deltas);
            s.spawn(move || {
                let mut last = handle.stats();
                for (i, q) in queries.iter().enumerate() {
                    match q {
                        Q::Point(u) => assert_eq!(
                            handle.component_of(*u).unwrap(),
                            reps[*u as usize],
                            "thread {t} query {i}: component_of({u})"
                        ),
                        Q::Same(u, v) => assert_eq!(
                            handle.same_component(*u, *v).unwrap(),
                            reps[*u as usize] == reps[*v as usize],
                            "thread {t} query {i}: same_component({u}, {v})"
                        ),
                        Q::Size(u) => assert_eq!(
                            handle.component_size(*u).unwrap(),
                            sizes[&reps[*u as usize]],
                            "thread {t} query {i}: component_size({u})"
                        ),
                        Q::Batch(us) => assert_eq!(
                            handle.component_of_many(us).unwrap(),
                            us.iter().map(|&u| reps[u as usize]).collect::<Vec<_>>(),
                            "thread {t} query {i}: batch"
                        ),
                    }
                    let now = handle.stats();
                    assert_eq!(
                        now.since(&last),
                        owned_deltas[i],
                        "thread {t} query {i}: logical I/O diverges from the owned path"
                    );
                    last = now;
                }
            });
        }
    });
}

#[test]
fn batched_queries_dedupe_same_page_probes_under_concurrency() {
    let env = DiskEnv::new_temp(IoConfig::new(BLOCK, 4 << 20)).unwrap();
    let (path, reps) = fixture(&env);
    let reader = SccIndex::open_shared(&path, 64).unwrap();
    let per_page = BLOCK as u32 / 4; // u32 labels

    // All on one label page (nodes 0..per_page) vs spread across pages:
    // the one-page batch must cost exactly one block read on every
    // thread, regardless of pool contention.
    let one_page: Vec<u32> = (0..16).map(|i| i * (per_page / 16)).collect();
    let spread: Vec<u32> = (0..4).map(|i| i * per_page).filter(|&u| u < N_NODES).collect();
    let spread_pages = spread.len() as u64;
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            let handle = reader.clone();
            let (one_page, spread, reps) = (&one_page, &spread, &reps);
            s.spawn(move || {
                for _ in 0..50 {
                    let before = handle.stats();
                    let got = handle.component_of_many(one_page).unwrap();
                    let delta = handle.stats().since(&before);
                    assert_eq!(
                        got,
                        one_page.iter().map(|&u| reps[u as usize]).collect::<Vec<_>>()
                    );
                    assert_eq!(
                        delta.total_ios(),
                        1,
                        "16 same-page lookups must collapse to one block read"
                    );

                    let before = handle.stats();
                    handle.component_of_many(spread).unwrap();
                    let delta = handle.stats().since(&before);
                    assert_eq!(
                        delta.total_ios(),
                        spread_pages,
                        "distinct-page lookups pay one read per page"
                    );
                }
            });
        }
    });
}

#[test]
fn clones_share_physical_pool_but_not_logical_counters() {
    let env = DiskEnv::new_temp(IoConfig::new(BLOCK, 4 << 20)).unwrap();
    let (path, _) = fixture(&env);
    let reader = SccIndex::open_shared(&path, 64).unwrap();
    let opened = reader.stats();

    // Prime every page the workload will touch through clone A...
    let a = reader.clone();
    assert_eq!(a.stats(), IoSnapshot::default(), "clones start with zeroed counters");
    for u in (0..N_NODES).step_by(16) {
        a.component_of(u).unwrap();
    }
    let a_after = a.stats();
    assert!(a_after.total_ios() > 0);

    // ...then clone B pays the same *logical* price but zero *physical*
    // reads: the pool is shared, the model's counters are not.
    let phys_before = reader.phys();
    let b = reader.clone();
    for u in (0..N_NODES).step_by(16) {
        b.component_of(u).unwrap();
    }
    assert_eq!(b.stats(), a_after, "same workload, same logical bill");
    let phys = reader.phys().since(&phys_before);
    assert_eq!(phys.reads, 0, "warm pool: clone B must be served from cache");
    assert!(phys.hits > 0);
    // The original handle never ran a query; its counters still show only
    // the open-time validation scan.
    assert_eq!(reader.stats(), opened);
}
