//! End-to-end tests of the `scc` command-line binary.

use std::process::Command;

fn scc_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_scc"))
}

#[test]
fn computes_labels_from_text_input() {
    let dir = std::env::temp_dir().join(format!("scc-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let input = dir.join("g.txt");
    std::fs::write(&input, "0 1\n1 2\n2 0\n2 3\n3 4\n4 3\n").unwrap();
    let out_path = dir.join("labels.txt");
    let dag_path = dir.join("dag.txt");

    let output = scc_bin()
        .args(["--input"])
        .arg(&input)
        .args(["--mem", "1M", "--block", "4K", "--stats"])
        .arg("--out")
        .arg(&out_path)
        .arg("--condense")
        .arg(&dag_path)
        .output()
        .expect("binary runs");
    assert!(output.status.success(), "stderr: {}", String::from_utf8_lossy(&output.stderr));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("2 SCCs"), "stderr: {stderr}");
    assert!(stderr.contains("avg degree"), "--stats output missing");

    let labels = std::fs::read_to_string(&out_path).unwrap();
    let rows: Vec<(u32, u32)> = labels
        .lines()
        .map(|l| {
            let mut it = l.split_whitespace();
            (
                it.next().unwrap().parse().unwrap(),
                it.next().unwrap().parse().unwrap(),
            )
        })
        .collect();
    assert_eq!(rows.len(), 5);
    assert_eq!(rows[0].1, rows[1].1);
    assert_eq!(rows[3].1, rows[4].1);
    assert_ne!(rows[0].1, rows[3].1);

    let dag = std::fs::read_to_string(&dag_path).unwrap();
    assert_eq!(dag.lines().count(), 1, "one quotient edge between the SCCs");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn binary_roundtrip_through_cli() {
    let dir = std::env::temp_dir().join(format!("scc-cli-bin-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let input = dir.join("g.txt");
    std::fs::write(&input, "0 1\n1 0\n").unwrap();
    let ceg = dir.join("g.ceg");

    let first = scc_bin()
        .arg("--input")
        .arg(&input)
        .arg("--export-binary")
        .arg(&ceg)
        .output()
        .unwrap();
    assert!(first.status.success());

    let second = scc_bin().arg("--input").arg(&ceg).output().unwrap();
    assert!(second.status.success());
    let stderr = String::from_utf8_lossy(&second.stderr);
    assert!(stderr.contains("1 SCCs"), "stderr: {stderr}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn rejects_bad_arguments() {
    let no_input = scc_bin().output().unwrap();
    assert_eq!(no_input.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&no_input.stderr).contains("usage"));

    let unknown = scc_bin().args(["--frobnicate"]).output().unwrap();
    assert_eq!(unknown.status.code(), Some(2));

    let bad_mem = scc_bin()
        .args(["--input", "/nonexistent", "--mem", "1K", "--block", "4K"])
        .output()
        .unwrap();
    assert_eq!(bad_mem.status.code(), Some(2), "M < 2B must be rejected");
}

#[test]
fn help_prints_usage_and_exits_zero() {
    for flag in ["--help", "-h"] {
        let r = scc_bin().arg(flag).output().unwrap();
        assert_eq!(r.status.code(), Some(0), "{flag} must exit 0");
        assert!(String::from_utf8_lossy(&r.stdout).contains("usage"));
    }
}

#[test]
fn malformed_edge_list_is_reported() {
    let dir = std::env::temp_dir().join(format!("scc-cli-bad-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    // A line with only one endpoint.
    let truncated = dir.join("truncated.txt");
    std::fs::write(&truncated, "0 1\n2\n").unwrap();
    let r = scc_bin().arg("--input").arg(&truncated).output().unwrap();
    assert_eq!(r.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&r.stderr);
    assert!(stderr.contains("error"), "stderr: {stderr}");
    assert!(stderr.contains("malformed"), "stderr: {stderr}");

    // Non-numeric node ids.
    let garbage = dir.join("garbage.txt");
    std::fs::write(&garbage, "alpha beta\n").unwrap();
    let r = scc_bin().arg("--input").arg(&garbage).output().unwrap();
    assert_eq!(r.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&r.stderr).contains("error"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn zero_memory_budget_is_rejected() {
    // M = 0 can never satisfy M >= 2B.
    let r = scc_bin()
        .args(["--input", "/irrelevant.txt", "--mem", "0"])
        .output()
        .unwrap();
    assert_eq!(r.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&r.stderr).contains("two blocks"));

    // B = 0 sneaks past M >= 2B and must be rejected on its own.
    let r = scc_bin()
        .args(["--input", "/irrelevant.txt", "--mem", "0", "--block", "0"])
        .output()
        .unwrap();
    assert_eq!(r.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&r.stderr).contains("nonzero"));
}

#[test]
fn overflowing_sizes_are_rejected() {
    // 2 * block would wrap to 0 and sneak past the M >= 2B guard. (On
    // 32-bit targets the value already fails usize parsing — also exit 2.)
    let r = scc_bin()
        .args(["--input", "/x", "--mem", "64M", "--block", "9223372036854775808"])
        .output()
        .unwrap();
    assert_eq!(r.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&r.stderr);
    assert!(
        stderr.contains("two blocks") || stderr.contains("bad size"),
        "stderr: {stderr}"
    );

    // usize::MAX kibibytes overflows the suffix multiplier.
    let r = scc_bin()
        .args(["--input", "/x", "--mem", "18446744073709551615K"])
        .output()
        .unwrap();
    assert_eq!(r.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&r.stderr).contains("overflows"));
}

#[test]
fn missing_flag_value_is_rejected() {
    let r = scc_bin().args(["--input"]).output().unwrap();
    assert_eq!(r.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&r.stderr).contains("requires a value"));

    let r = scc_bin()
        .args(["--input", "g.txt", "--mem", "lots"])
        .output()
        .unwrap();
    assert_eq!(r.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&r.stderr).contains("bad size"));
}

#[test]
fn mem_backend_produces_identical_labels_and_reports_cache_stats() {
    let dir = std::env::temp_dir().join(format!("scc-cli-mem-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let input = dir.join("g.txt");
    std::fs::write(&input, "0 1\n1 2\n2 0\n2 3\n3 4\n4 3\n").unwrap();

    let mut labels = Vec::new();
    for backend in ["file", "mem"] {
        let r = scc_bin()
            .arg("--input")
            .arg(&input)
            .args(["--mem", "1M", "--block", "4K", "--backend", backend, "--stats"])
            .output()
            .unwrap();
        assert!(
            r.status.success(),
            "--backend {backend} failed: {}",
            String::from_utf8_lossy(&r.stderr)
        );
        let stderr = String::from_utf8_lossy(&r.stderr);
        assert!(stderr.contains("cache hits"), "--stats must report the pool: {stderr}");
        assert!(
            stderr.contains(&format!("{backend} backend")),
            "--stats must name the backend: {stderr}"
        );
        labels.push(String::from_utf8_lossy(&r.stdout).into_owned());
    }
    assert_eq!(labels[0], labels[1], "backends must agree on the labeling");

    // An explicit pool size is honoured, and 0 disables the pool.
    let r = scc_bin()
        .arg("--input")
        .arg(&input)
        .args(["--mem", "1M", "--block", "4K", "--cache-blocks", "0", "--stats"])
        .output()
        .unwrap();
    assert!(r.status.success());
    let stderr = String::from_utf8_lossy(&r.stderr);
    assert!(stderr.contains(", 0 cache blocks;"), "{stderr}");
    assert!(
        stderr.contains("; 0 cache hits,"),
        "pass-through must not hit: {stderr}"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_backend_and_cache_flags_are_rejected() {
    let r = scc_bin()
        .args(["--input", "g.txt", "--backend", "tape"])
        .output()
        .unwrap();
    assert_eq!(r.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&r.stderr).contains("unknown backend"));

    let r = scc_bin()
        .args(["--input", "g.txt", "--cache-blocks", "many"])
        .output()
        .unwrap();
    assert_eq!(r.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&r.stderr).contains("bad --cache-blocks"));

    let r = scc_bin().args(["--input", "g.txt", "--backend"]).output().unwrap();
    assert_eq!(r.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&r.stderr).contains("requires a value"));
}

#[test]
fn missing_input_file_is_reported() {
    let r = scc_bin()
        .args(["--input", "/definitely/not/here.txt"])
        .output()
        .unwrap();
    assert_eq!(r.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&r.stderr).contains("error"));
}

#[test]
fn verify_smoke_output_is_byte_stable() {
    // `scc verify` output is a promise: it contains no wall-clock times, no
    // scratch paths and no hash-map iteration order, so the whole summary
    // table is byte-for-byte reproducible. Golden file: regenerate with
    //   cargo run --release --bin scc -- verify --scale smoke \
    //     > tests/golden/verify_smoke.txt
    let r = scc_bin().args(["verify", "--scale", "smoke"]).output().unwrap();
    assert!(
        r.status.success(),
        "verify failed: {}",
        String::from_utf8_lossy(&r.stderr)
    );
    let golden = include_str!("golden/verify_smoke.txt");
    let got = String::from_utf8_lossy(&r.stdout);
    assert_eq!(
        got, golden,
        "scc verify --scale smoke output drifted from tests/golden/verify_smoke.txt \
         (if the change is intentional, regenerate the golden file)"
    );
}

#[test]
fn verify_rejects_bad_arguments() {
    let r = scc_bin().args(["verify", "--scale", "bogus"]).output().unwrap();
    assert_eq!(r.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&r.stderr).contains("smoke|full"));

    let r = scc_bin().args(["verify", "--frobnicate"]).output().unwrap();
    assert_eq!(r.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&r.stderr).contains("usage"));

    let r = scc_bin().args(["verify", "--help"]).output().unwrap();
    assert_eq!(r.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&r.stdout).contains("verify"));
}
