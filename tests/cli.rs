//! End-to-end tests of the `scc` command-line binary.

use std::process::Command;

fn scc_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_scc"))
}

#[test]
fn computes_labels_from_text_input() {
    let dir = std::env::temp_dir().join(format!("scc-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let input = dir.join("g.txt");
    std::fs::write(&input, "0 1\n1 2\n2 0\n2 3\n3 4\n4 3\n").unwrap();
    let out_path = dir.join("labels.txt");
    let dag_path = dir.join("dag.txt");

    let output = scc_bin()
        .args(["--input"])
        .arg(&input)
        .args(["--mem", "1M", "--block", "4K", "--stats"])
        .arg("--out")
        .arg(&out_path)
        .arg("--condense")
        .arg(&dag_path)
        .output()
        .expect("binary runs");
    assert!(output.status.success(), "stderr: {}", String::from_utf8_lossy(&output.stderr));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("2 SCCs"), "stderr: {stderr}");
    assert!(stderr.contains("avg degree"), "--stats output missing");

    let labels = std::fs::read_to_string(&out_path).unwrap();
    let rows: Vec<(u32, u32)> = labels
        .lines()
        .map(|l| {
            let mut it = l.split_whitespace();
            (
                it.next().unwrap().parse().unwrap(),
                it.next().unwrap().parse().unwrap(),
            )
        })
        .collect();
    assert_eq!(rows.len(), 5);
    assert_eq!(rows[0].1, rows[1].1);
    assert_eq!(rows[3].1, rows[4].1);
    assert_ne!(rows[0].1, rows[3].1);

    let dag = std::fs::read_to_string(&dag_path).unwrap();
    assert_eq!(dag.lines().count(), 1, "one quotient edge between the SCCs");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn binary_roundtrip_through_cli() {
    let dir = std::env::temp_dir().join(format!("scc-cli-bin-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let input = dir.join("g.txt");
    std::fs::write(&input, "0 1\n1 0\n").unwrap();
    let ceg = dir.join("g.ceg");

    let first = scc_bin()
        .arg("--input")
        .arg(&input)
        .arg("--export-binary")
        .arg(&ceg)
        .output()
        .unwrap();
    assert!(first.status.success());

    let second = scc_bin().arg("--input").arg(&ceg).output().unwrap();
    assert!(second.status.success());
    let stderr = String::from_utf8_lossy(&second.stderr);
    assert!(stderr.contains("1 SCCs"), "stderr: {stderr}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn rejects_bad_arguments() {
    let no_input = scc_bin().output().unwrap();
    assert_eq!(no_input.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&no_input.stderr).contains("usage"));

    let unknown = scc_bin().args(["--frobnicate"]).output().unwrap();
    assert_eq!(unknown.status.code(), Some(2));

    let bad_mem = scc_bin()
        .args(["--input", "/nonexistent", "--mem", "1K", "--block", "4K"])
        .output()
        .unwrap();
    assert_eq!(bad_mem.status.code(), Some(2), "M < 2B must be rejected");
}

#[test]
fn help_prints_usage_and_exits_zero() {
    for flag in ["--help", "-h"] {
        let r = scc_bin().arg(flag).output().unwrap();
        assert_eq!(r.status.code(), Some(0), "{flag} must exit 0");
        assert!(String::from_utf8_lossy(&r.stdout).contains("usage"));
    }
}

#[test]
fn every_subcommand_accepts_help() {
    for cmd in [
        vec!["run", "--help"],
        vec!["plan", "--help"],
        vec!["index", "--help"],
        vec!["index", "build", "--help"],
        vec!["index", "query", "--help"],
        vec!["serve", "--help"],
        vec!["serve", "-h"],
        vec!["verify", "--help"],
        vec!["run", "-h"],
        vec!["plan", "-h"],
    ] {
        let r = scc_bin().args(&cmd).output().unwrap();
        assert_eq!(r.status.code(), Some(0), "{cmd:?} must exit 0");
        assert!(
            String::from_utf8_lossy(&r.stdout).contains("usage"),
            "{cmd:?} must print usage"
        );
    }
}

#[test]
fn version_flag_prints_crate_version() {
    for flag in ["--version", "-V"] {
        let r = scc_bin().arg(flag).output().unwrap();
        assert_eq!(r.status.code(), Some(0), "{flag} must exit 0");
        let out = String::from_utf8_lossy(&r.stdout);
        assert_eq!(out.trim(), format!("scc {}", env!("CARGO_PKG_VERSION")), "{flag}");
    }
}

#[test]
fn run_subcommand_matches_flat_flags_byte_for_byte() {
    let dir = std::env::temp_dir().join(format!("scc-cli-run-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let input = dir.join("g.txt");
    std::fs::write(&input, "0 1\n1 2\n2 0\n2 3\n3 4\n4 3\n").unwrap();

    let flat = scc_bin()
        .arg("--input")
        .arg(&input)
        .args(["--mem", "1M", "--block", "4K"])
        .output()
        .unwrap();
    let sub = scc_bin()
        .arg("run")
        .arg("--input")
        .arg(&input)
        .args(["--mem", "1M", "--block", "4K"])
        .output()
        .unwrap();
    assert!(flat.status.success() && sub.status.success());
    assert_eq!(flat.stdout, sub.stdout, "label output must be byte-identical");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn plan_prints_a_deterministic_engine_choice() {
    let dir = std::env::temp_dir().join(format!("scc-cli-plan-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let input = dir.join("g.txt");
    std::fs::write(&input, "0 1\n1 2\n2 0\n2 3\n3 4\n4 3\n").unwrap();

    // Roomy budget: the 5-node array fits -> Semi-SCC, with the reason.
    let roomy = scc_bin()
        .args(["plan", "--input"])
        .arg(&input)
        .args(["--mem", "64M"])
        .output()
        .unwrap();
    assert!(roomy.status.success(), "{}", String::from_utf8_lossy(&roomy.stderr));
    let out = String::from_utf8_lossy(&roomy.stdout);
    assert!(out.contains("graph: |V| = 5, |E| = 6"), "{out}");
    assert!(out.contains("engine: Semi-SCC"), "{out}");
    assert!(out.contains("reason: "), "{out}");
    assert!(out.contains("fits"), "{out}");
    assert!(out.contains("predicted contraction passes: 0"), "{out}");

    // Deterministic: a second run prints the same bytes.
    let again = scc_bin()
        .args(["plan", "--input"])
        .arg(&input)
        .args(["--mem", "64M"])
        .output()
        .unwrap();
    assert_eq!(roomy.stdout, again.stdout);

    // Tight budget: the node array does not fit -> Ext-SCC-Op.
    let tight = scc_bin()
        .args(["plan", "--input"])
        .arg(&input)
        .args(["--mem", "512", "--block", "256"])
        .output()
        .unwrap();
    assert!(tight.status.success());
    let out = String::from_utf8_lossy(&tight.stdout);
    assert!(out.contains("engine: Ext-SCC-Op"), "{out}");
    assert!(out.contains("exceeds"), "{out}");

    // An override is honoured and recorded in the reason.
    let forced = scc_bin()
        .args(["plan", "--input"])
        .arg(&input)
        .args(["--mem", "64M", "--engine", "ext-scc"])
        .output()
        .unwrap();
    assert!(forced.status.success());
    let out = String::from_utf8_lossy(&forced.stdout);
    assert!(out.contains("engine: Ext-SCC\n"), "{out}");
    assert!(out.contains("override"), "{out}");

    // Bad engine names are rejected as usage errors (exit 2) ...
    let bad = scc_bin()
        .args(["plan", "--input"])
        .arg(&input)
        .args(["--engine", "quantum"])
        .output()
        .unwrap();
    assert_eq!(bad.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&bad.stderr).contains("bad --engine"));

    // ... while runtime failures exit 1, like every other subcommand.
    let missing = scc_bin()
        .args(["plan", "--input", "/definitely/not/here.txt"])
        .output()
        .unwrap();
    assert_eq!(missing.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&missing.stderr).contains("error"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn index_build_then_query_answers_without_recomputing() {
    let dir = std::env::temp_dir().join(format!("scc-cli-idx-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let input = dir.join("g.txt");
    // {0,1,2} and {3,4} strongly connected, 2 -> 3 between them.
    std::fs::write(&input, "0 1\n1 2\n2 0\n2 3\n3 4\n4 3\n").unwrap();
    let idx = dir.join("g.sccidx");

    let build = scc_bin()
        .args(["index", "build", "--input"])
        .arg(&input)
        .arg("--out")
        .arg(&idx)
        .args(["--mem", "1M", "--block", "4K", "--condense"])
        .output()
        .unwrap();
    assert!(build.status.success(), "{}", String::from_utf8_lossy(&build.stderr));
    let stderr = String::from_utf8_lossy(&build.stderr);
    assert!(stderr.contains("plan: engine="), "{stderr}");
    assert!(stderr.contains("index written to"), "{stderr}");
    assert!(stderr.contains("2 components"), "{stderr}");
    assert!(stderr.contains("condensation edges"), "{stderr}");
    assert!(idx.is_file(), "artifact persisted");

    // Delete the input: queries must be answered from the artifact alone.
    std::fs::remove_file(&input).unwrap();

    let query = scc_bin()
        .args(["index", "query", "--index"])
        .arg(&idx)
        .args(["-u", "0", "-v", "1", "--stats"])
        .output()
        .unwrap();
    assert!(query.status.success(), "{}", String::from_utf8_lossy(&query.stderr));
    let out = String::from_utf8_lossy(&query.stdout);
    assert!(out.contains("component_of(0) = 0"), "{out}");
    assert!(out.contains("component_size(0) = 3"), "{out}");
    assert!(out.contains("same_component(0, 1) = true"), "{out}");
    let stderr = String::from_utf8_lossy(&query.stderr);
    assert!(stderr.contains("query I/O: "), "--stats must report logical query I/O: {stderr}");
    assert!(stderr.contains("open I/O: "), "{stderr}");
    // The storage line shared with `scc run --stats`: physical counters
    // plus the pool hit rate.
    assert!(stderr.contains("storage: "), "{stderr}");
    assert!(stderr.contains("physical transfers"), "{stderr}");
    assert!(stderr.contains("hit rate"), "{stderr}");

    let cross = scc_bin()
        .args(["index", "query", "--index"])
        .arg(&idx)
        .args(["-u", "0", "-v", "3"])
        .output()
        .unwrap();
    assert!(cross.status.success());
    assert!(String::from_utf8_lossy(&cross.stdout).contains("same_component(0, 3) = false"));

    // Out-of-range nodes and corrupt artifacts fail cleanly.
    let oob = scc_bin()
        .args(["index", "query", "--index"])
        .arg(&idx)
        .args(["-u", "99"])
        .output()
        .unwrap();
    assert_eq!(oob.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&oob.stderr).contains("out of range"));

    let mut bytes = std::fs::read(&idx).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&idx, &bytes).unwrap();
    let corrupt = scc_bin()
        .args(["index", "query", "--index"])
        .arg(&idx)
        .args(["-u", "0"])
        .output()
        .unwrap();
    assert_eq!(corrupt.status.code(), Some(1));
    assert!(
        String::from_utf8_lossy(&corrupt.stderr).contains("checksum"),
        "corruption must surface as a checksum error: {}",
        String::from_utf8_lossy(&corrupt.stderr)
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn index_query_out_of_range_is_one_clean_line_for_both_nodes() {
    let dir = std::env::temp_dir().join(format!("scc-cli-oob-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let input = dir.join("g.txt");
    std::fs::write(&input, "0 1\n1 2\n2 0\n2 3\n3 4\n4 3\n").unwrap();
    let idx = dir.join("g.sccidx");
    let build = scc_bin()
        .args(["index", "build", "--input"])
        .arg(&input)
        .arg("--out")
        .arg(&idx)
        .output()
        .unwrap();
    assert!(build.status.success(), "{}", String::from_utf8_lossy(&build.stderr));

    // A failing query must be one error line and nothing else — in
    // particular `-u 0 -v 99` must not print the `-u` answers before
    // discovering `-v` is out of range.
    for args in [vec!["-u", "99"], vec!["-u", "0", "-v", "99"], vec!["-u", "99", "-v", "0"]] {
        let r = scc_bin()
            .args(["index", "query", "--index"])
            .arg(&idx)
            .args(&args)
            .output()
            .unwrap();
        assert_eq!(r.status.code(), Some(1), "{args:?}");
        assert_eq!(r.stdout, b"", "{args:?}: no partial answers on stdout");
        let stderr = String::from_utf8_lossy(&r.stderr);
        assert_eq!(
            stderr.trim(),
            "error: node 99 out of range (index covers 5 nodes)",
            "{args:?}"
        );
    }

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_self_test_passes_and_exits_zero() {
    let r = scc_bin()
        .args(["serve", "--self-test", "--threads", "2", "--nodes", "600"])
        .output()
        .unwrap();
    assert!(
        r.status.success(),
        "stdout: {}\nstderr: {}",
        String::from_utf8_lossy(&r.stdout),
        String::from_utf8_lossy(&r.stderr)
    );
    let out = String::from_utf8_lossy(&r.stdout);
    assert!(out.contains("self-test ok"), "{out}");
    assert!(out.contains("logical I/O"), "{out}");
}

#[test]
fn serve_answers_protocol_lines_in_order_and_survives_bad_queries() {
    use std::io::Write as _;
    use std::process::Stdio;

    let dir = std::env::temp_dir().join(format!("scc-cli-serve-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let input = dir.join("g.txt");
    std::fs::write(&input, "0 1\n1 2\n2 0\n2 3\n3 4\n4 3\n").unwrap();
    let idx = dir.join("g.sccidx");
    let build = scc_bin()
        .args(["index", "build", "--input"])
        .arg(&input)
        .arg("--out")
        .arg(&idx)
        .output()
        .unwrap();
    assert!(build.status.success(), "{}", String::from_utf8_lossy(&build.stderr));

    let mut child = scc_bin()
        .args(["serve", "--index"])
        .arg(&idx)
        .args(["--threads", "2"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .take()
        .unwrap()
        .write_all(b"c 0\ns 0 1\ns 0 3\nz 3\nb 0 1 2 3 4\nc 99\nq nope\nb\n")
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    // Answers come back in input order: bad queries are answered inline
    // with `error:` lines and do not kill the loop.
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(
        lines,
        vec![
            "component_of(0) = 0",
            "same_component(0, 1) = true",
            "same_component(0, 3) = false",
            "component_size(3) = 2",
            "component_of_many(5) = 0 0 0 3 3",
            "error: node 99 out of range (index covers 5 nodes)",
            "error: unknown query op \"q\" (use c|s|z|b)",
            "error: \"b\" needs at least one node",
        ],
        "{stdout}"
    );
    // The banner goes to stderr so stdout stays machine-parseable.
    assert!(String::from_utf8_lossy(&out.stderr).contains("serving"), "banner on stderr");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_generated_workload_reports_qps() {
    let dir = std::env::temp_dir().join(format!("scc-cli-serveq-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let input = dir.join("g.txt");
    std::fs::write(&input, "0 1\n1 2\n2 0\n2 3\n3 4\n4 3\n").unwrap();
    let idx = dir.join("g.sccidx");
    assert!(scc_bin()
        .args(["index", "build", "--input"])
        .arg(&input)
        .arg("--out")
        .arg(&idx)
        .output()
        .unwrap()
        .status
        .success());

    let r = scc_bin()
        .args(["serve", "--index"])
        .arg(&idx)
        .args(["--threads", "2", "--queries", "500", "--batch", "4", "--stats"])
        .output()
        .unwrap();
    assert!(r.status.success(), "{}", String::from_utf8_lossy(&r.stderr));
    let out = String::from_utf8_lossy(&r.stdout);
    assert!(out.contains("served 500 queries on 2 threads"), "{out}");
    assert!(out.contains("qps"), "{out}");
    let stderr = String::from_utf8_lossy(&r.stderr);
    assert!(stderr.contains("workload logical I/O"), "{stderr}");
    assert!(stderr.contains("serve.queries"), "--stats must render metrics: {stderr}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_rejects_bad_usage_and_missing_index() {
    // Usage errors exit 2.
    let r = scc_bin().args(["serve", "--frobnicate"]).output().unwrap();
    assert_eq!(r.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&r.stderr).contains("unknown serve argument"));

    // `--threads 0` is rejected uniformly across run/index build/serve:
    // one clean error line, exit 1 (PR 10).
    let r = scc_bin().args(["serve", "--threads", "0"]).output().unwrap();
    assert_eq!(r.status.code(), Some(1));
    let err = String::from_utf8_lossy(&r.stderr);
    assert_eq!(err.trim(), "error: --threads must be at least 1", "{err}");

    let r = scc_bin().args(["serve", "--threads"]).output().unwrap();
    assert_eq!(r.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&r.stderr).contains("requires a value"));

    // Runtime failures exit 1: no --index at all, then one that is not there.
    let r = scc_bin().args(["serve"]).output().unwrap();
    assert_eq!(r.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&r.stderr).contains("--index is required"));

    let r = scc_bin()
        .args(["serve", "--index", "/definitely/not/here.sccidx"])
        .output()
        .unwrap();
    assert_eq!(r.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&r.stderr).contains("error"));
}

#[test]
fn index_subcommand_rejects_bad_usage() {
    let r = scc_bin().args(["index"]).output().unwrap();
    assert_eq!(r.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&r.stderr).contains("build|query"));

    let r = scc_bin().args(["index", "rebuild"]).output().unwrap();
    assert_eq!(r.status.code(), Some(2));

    let r = scc_bin().args(["index", "build", "--input", "g.txt"]).output().unwrap();
    assert_eq!(r.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&r.stderr).contains("--out is required"));

    let r = scc_bin().args(["index", "query", "--index", "x.sccidx"]).output().unwrap();
    assert_eq!(r.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&r.stderr).contains("-u is required"));

    let r = scc_bin()
        .args(["index", "query", "--index", "x.sccidx", "-u", "abc"])
        .output()
        .unwrap();
    assert_eq!(r.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&r.stderr).contains("bad -u"));
}

#[test]
fn bare_size_suffixes_are_rejected() {
    let r = scc_bin()
        .args(["--input", "g.txt", "--mem", "K"])
        .output()
        .unwrap();
    assert_eq!(r.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&r.stderr);
    assert!(stderr.contains("missing digits"), "{stderr}");
}

#[test]
fn malformed_edge_list_is_reported() {
    let dir = std::env::temp_dir().join(format!("scc-cli-bad-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    // A line with only one endpoint.
    let truncated = dir.join("truncated.txt");
    std::fs::write(&truncated, "0 1\n2\n").unwrap();
    let r = scc_bin().arg("--input").arg(&truncated).output().unwrap();
    assert_eq!(r.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&r.stderr);
    assert!(stderr.contains("error"), "stderr: {stderr}");
    assert!(stderr.contains("malformed"), "stderr: {stderr}");

    // Non-numeric node ids.
    let garbage = dir.join("garbage.txt");
    std::fs::write(&garbage, "alpha beta\n").unwrap();
    let r = scc_bin().arg("--input").arg(&garbage).output().unwrap();
    assert_eq!(r.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&r.stderr).contains("error"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn zero_memory_budget_is_rejected() {
    // M = 0 can never satisfy M >= 2B.
    let r = scc_bin()
        .args(["--input", "/irrelevant.txt", "--mem", "0"])
        .output()
        .unwrap();
    assert_eq!(r.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&r.stderr).contains("two blocks"));

    // B = 0 sneaks past M >= 2B and must be rejected on its own.
    let r = scc_bin()
        .args(["--input", "/irrelevant.txt", "--mem", "0", "--block", "0"])
        .output()
        .unwrap();
    assert_eq!(r.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&r.stderr).contains("nonzero"));
}

#[test]
fn overflowing_sizes_are_rejected() {
    // 2 * block would wrap to 0 and sneak past the M >= 2B guard. (On
    // 32-bit targets the value already fails usize parsing — also exit 2.)
    let r = scc_bin()
        .args(["--input", "/x", "--mem", "64M", "--block", "9223372036854775808"])
        .output()
        .unwrap();
    assert_eq!(r.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&r.stderr);
    assert!(
        stderr.contains("two blocks") || stderr.contains("bad size"),
        "stderr: {stderr}"
    );

    // usize::MAX kibibytes overflows the suffix multiplier.
    let r = scc_bin()
        .args(["--input", "/x", "--mem", "18446744073709551615K"])
        .output()
        .unwrap();
    assert_eq!(r.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&r.stderr).contains("overflows"));
}

#[test]
fn missing_flag_value_is_rejected() {
    let r = scc_bin().args(["--input"]).output().unwrap();
    assert_eq!(r.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&r.stderr).contains("requires a value"));

    let r = scc_bin()
        .args(["--input", "g.txt", "--mem", "lots"])
        .output()
        .unwrap();
    assert_eq!(r.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&r.stderr).contains("bad size"));
}

#[test]
fn mem_backend_produces_identical_labels_and_reports_cache_stats() {
    let dir = std::env::temp_dir().join(format!("scc-cli-mem-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let input = dir.join("g.txt");
    std::fs::write(&input, "0 1\n1 2\n2 0\n2 3\n3 4\n4 3\n").unwrap();

    let mut labels = Vec::new();
    for backend in ["file", "mem"] {
        let r = scc_bin()
            .arg("--input")
            .arg(&input)
            .args(["--mem", "1M", "--block", "4K", "--backend", backend, "--stats"])
            .output()
            .unwrap();
        assert!(
            r.status.success(),
            "--backend {backend} failed: {}",
            String::from_utf8_lossy(&r.stderr)
        );
        let stderr = String::from_utf8_lossy(&r.stderr);
        assert!(stderr.contains("cache hits"), "--stats must report the pool: {stderr}");
        assert!(
            stderr.contains(&format!("{backend} backend")),
            "--stats must name the backend: {stderr}"
        );
        labels.push(String::from_utf8_lossy(&r.stdout).into_owned());
    }
    assert_eq!(labels[0], labels[1], "backends must agree on the labeling");

    // An explicit pool size is honoured, and 0 disables the pool.
    let r = scc_bin()
        .arg("--input")
        .arg(&input)
        .args(["--mem", "1M", "--block", "4K", "--cache-blocks", "0", "--stats"])
        .output()
        .unwrap();
    assert!(r.status.success());
    let stderr = String::from_utf8_lossy(&r.stderr);
    assert!(stderr.contains(", 0 cache blocks;"), "{stderr}");
    assert!(
        stderr.contains("; 0 cache hits,"),
        "pass-through must not hit: {stderr}"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_backend_and_cache_flags_are_rejected() {
    let r = scc_bin()
        .args(["--input", "g.txt", "--backend", "tape"])
        .output()
        .unwrap();
    assert_eq!(r.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&r.stderr).contains("unknown backend"));

    let r = scc_bin()
        .args(["--input", "g.txt", "--cache-blocks", "many"])
        .output()
        .unwrap();
    assert_eq!(r.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&r.stderr).contains("bad --cache-blocks"));

    let r = scc_bin().args(["--input", "g.txt", "--backend"]).output().unwrap();
    assert_eq!(r.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&r.stderr).contains("requires a value"));
}

#[test]
fn trace_rejects_bad_modes() {
    for args in [
        vec!["run", "--input", "g.txt", "--trace", "xml"],
        vec!["run", "--input", "g.txt", "--trace=xml"],
    ] {
        let r = scc_bin().args(&args).output().unwrap();
        assert_eq!(r.status.code(), Some(2), "{args:?}");
        assert!(
            String::from_utf8_lossy(&r.stderr).contains("human|json"),
            "{args:?}"
        );
    }
}

#[test]
fn missing_input_file_is_reported() {
    let r = scc_bin()
        .args(["--input", "/definitely/not/here.txt"])
        .output()
        .unwrap();
    assert_eq!(r.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&r.stderr).contains("error"));
}

#[test]
fn verify_smoke_output_is_byte_stable() {
    // `scc verify` output is a promise: it contains no wall-clock times, no
    // scratch paths and no hash-map iteration order, so the whole summary
    // table is byte-for-byte reproducible. Golden file: regenerate with
    //   cargo run --release --bin scc -- verify --scale smoke \
    //     > tests/golden/verify_smoke.txt
    let r = scc_bin().args(["verify", "--scale", "smoke"]).output().unwrap();
    assert!(
        r.status.success(),
        "verify failed: {}",
        String::from_utf8_lossy(&r.stderr)
    );
    let golden = include_str!("golden/verify_smoke.txt");
    let got = String::from_utf8_lossy(&r.stdout);
    assert_eq!(
        got, golden,
        "scc verify --scale smoke output drifted from tests/golden/verify_smoke.txt \
         (if the change is intentional, regenerate the golden file)"
    );
}

#[test]
fn verify_rejects_bad_arguments() {
    let r = scc_bin().args(["verify", "--scale", "bogus"]).output().unwrap();
    assert_eq!(r.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&r.stderr).contains("smoke|full"));

    let r = scc_bin().args(["verify", "--frobnicate"]).output().unwrap();
    assert_eq!(r.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&r.stderr).contains("usage"));

    let r = scc_bin().args(["verify", "--help"]).output().unwrap();
    assert_eq!(r.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&r.stdout).contains("verify"));
}
