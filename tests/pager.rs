//! End-to-end acceptance of the `ce-pager` subsystem: the buffer pool and
//! the in-memory backend must leave the paper's logical I/O accounting
//! bit-for-bit unchanged while actually moving fewer blocks.

use contract_expand::prelude::*;

/// One fixed contraction-forcing workload, mirroring the `end_to_end` bench
/// shape at integration-test scale.
fn workload(env: &DiskEnv) -> contract_expand::graph::EdgeListGraph {
    contract_expand::graph::gen::web_like(env, 8_000, 4.0, 88).unwrap()
}

fn cfg() -> IoConfig {
    // Budget fits roughly half the nodes: contraction genuinely runs.
    IoConfig::new(4 << 10, 72 << 10)
}

/// The ISSUE's acceptance criterion: a pooled Ext-SCC-Op run reports
/// strictly fewer physical transfers than logical model I/Os (with cache
/// hits), while the logical `IoStats` are identical to an unpooled run.
#[test]
fn pooled_run_same_logical_ios_fewer_physical_transfers() {
    let run = |opts: EnvOptions| {
        let env = DiskEnv::new_temp_with(cfg(), opts).unwrap();
        let g = workload(&env);
        let io0 = env.stats().snapshot();
        let phys0 = env.phys();
        let out = ExtScc::new(&env, ExtSccConfig::optimized()).run(&g).unwrap();
        (
            out.report.n_sccs,
            env.stats().snapshot().since(&io0),
            env.phys().since(&phys0),
        )
    };

    let (sccs_plain, logical_plain, phys_plain) = run(EnvOptions::unpooled());
    let (sccs_pooled, logical_pooled, phys_pooled) = run(EnvOptions::pooled(&cfg()));

    assert_eq!(sccs_plain, sccs_pooled);
    assert_eq!(
        logical_plain, logical_pooled,
        "the pool must not change the paper's logical I/O accounting"
    );
    assert!(phys_pooled.hits > 0, "pool never hit: {phys_pooled}");
    assert!(
        phys_pooled.transfers() < logical_pooled.total_ios(),
        "pooled physical transfers ({}) must undercut logical I/Os ({}); {phys_pooled}",
        phys_pooled.transfers(),
        logical_pooled.total_ios()
    );
    assert!(
        phys_pooled.transfers() < phys_plain.transfers(),
        "pooling must reduce physical traffic: {} vs {}",
        phys_pooled.transfers(),
        phys_plain.transfers()
    );
    // Unpooled mode is pass-through: it serves nothing from a cache.
    assert_eq!(phys_plain.hits, 0);
}

/// The in-memory backend must be a drop-in substrate: same labels, same
/// logical I/Os, zero filesystem footprint.
#[test]
fn mem_backend_is_a_drop_in_substrate() {
    let run = |opts: EnvOptions| {
        let env = DiskEnv::new_temp_with(cfg(), opts).unwrap();
        let g = workload(&env);
        let io0 = env.stats().snapshot();
        let out = ExtScc::new(&env, ExtSccConfig::optimized()).run(&g).unwrap();
        let root = env.root().to_path_buf();
        (
            out.labels.read_all().unwrap(),
            env.stats().snapshot().since(&io0),
            root,
        )
    };
    let (labels_file, logical_file, _) = run(EnvOptions::unpooled());
    let (labels_mem, logical_mem, mem_root) = run(EnvOptions::mem(&cfg()));
    assert_eq!(labels_file, labels_mem, "labelings must agree across backends");
    assert_eq!(logical_file, logical_mem);
    assert!(!mem_root.exists(), "mem env must leave no directory behind");
}

/// Injected faults propagate through the buffer pool: they fire on physical
/// transfers (miss fills, write-backs), so a pooled algorithm run still
/// surfaces them as I/O errors instead of completing from cache.
#[test]
fn faults_propagate_through_the_pool() {
    let env = DiskEnv::new_temp_with(cfg(), EnvOptions::pooled(&cfg())).unwrap();
    let g = workload(&env);
    // Calibrate against a clean pooled run's physical volume.
    let phys0 = env.phys();
    ExtScc::new(&env, ExtSccConfig::optimized()).run(&g).unwrap();
    let clean = env.phys().since(&phys0).transfers();
    assert!(clean > 100, "calibration run too small: {clean}");

    for after in [1u64, clean / 2] {
        env.inject_fault_after(after);
        let r = ExtScc::new(&env, ExtSccConfig::optimized()).run(&g);
        env.clear_fault();
        match r {
            Err(ExtSccError::Io(e)) => assert!(e.to_string().contains("injected")),
            Ok(_) => panic!("pooled run must fail with injected fault at {after}"),
            Err(other) => panic!("unexpected error kind: {other}"),
        }
    }
}
