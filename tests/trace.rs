//! Integration tests of the observability layer: the I/O-attribution span
//! tree produced by `scc run --trace` and the library-level sum invariant.
//!
//! The load-bearing promise is **exact attribution**: every span closes
//! with the logical-I/O delta it consumed, children never claim more than
//! their parent, and the rendered tree's leaves (including the synthetic
//! `(self)` rows) sum byte-for-byte to the run's total `IoStats`. Tracing
//! itself costs no logical I/O, so the traced numbers are the same numbers
//! `--stats` reports.

use std::process::Command;
use std::rc::Rc;

use contract_expand::harness::{tight_budget, MATRIX_BLOCK};
use contract_expand::obs::{self, MemSink, SpanNode};
use contract_expand::prelude::*;

/// The conformance matrix's smoke `web` workload geometry.
const WEB_N: u32 = 600;

fn scc_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_scc"))
}

/// The smoke `web` graph under the tight budget: contraction genuinely
/// runs, so the trace has per-iteration spans to attribute.
fn smoke_web(env: &DiskEnv) -> EdgeListGraph {
    gen::web_like(env, WEB_N, 4.0, 11).unwrap()
}

/// Walks the tree checking the attribution invariant for `key`: no node's
/// children may claim more than the node consumed. Returns the leaf sum
/// (leaves plus each internal node's `(self)` remainder), which under that
/// invariant telescopes to the root's own counter.
fn leaf_sum(n: &SpanNode, key: &str) -> u64 {
    let own = n.counter(key).unwrap_or(0);
    let kids = n.children_sum(key);
    assert!(
        kids <= own,
        "children of span {:?} claim {kids} {key} > parent's {own}",
        n.name
    );
    if n.children.is_empty() {
        return own;
    }
    n.self_counter(key) + n.children.iter().map(|c| leaf_sum(c, key)).sum::<u64>()
}

#[test]
fn trace_leaf_deltas_sum_exactly_to_run_totals() {
    let mem = tight_budget(WEB_N as u64);
    let env = DiskEnv::new_temp(IoConfig::new(MATRIX_BLOCK, mem)).unwrap();
    let g = smoke_web(&env);

    let sink = Rc::new(MemSink::new());
    let guard = obs::install(sink.clone());
    let out = ExtScc::new(&env, ExtSccConfig::optimized()).run(&g).unwrap();
    drop(guard);

    let roots = sink.take();
    assert_eq!(roots.len(), 1, "one trace root: the driver's run span");
    let root = &roots[0];
    assert_eq!(root.name, "run");

    // The root span covers exactly the interval the report measures.
    let total = out.report.total_ios.total_ios();
    assert_eq!(root.counter("ios"), Some(total));
    assert!(total > 0, "smoke web under the tight budget does real I/O");

    // Leaves + (self) remainders sum exactly to the total — per counter.
    assert_eq!(leaf_sum(root, "ios"), total);
    assert_eq!(
        leaf_sum(root, "rand"),
        out.report.total_ios.random_ios(),
        "random-I/O attribution must telescope too"
    );

    // The tree actually has the paper's structure: contraction iterations
    // with Get-V / Get-E phases under them, and an expansion phase.
    let iters: Vec<&SpanNode> = root.children.iter().filter(|c| c.name == "iter").collect();
    assert!(!iters.is_empty(), "tight budget must force contraction");
    assert!(iters
        .iter()
        .all(|it| it.children.iter().any(|c| c.name == "get_v")));
    assert!(iters
        .iter()
        .all(|it| it.children.iter().any(|c| c.name == "get_e")));
    assert!(root.children.iter().any(|c| c.name == "expand"));
}

#[test]
fn tracing_does_not_change_logical_io() {
    let mem = tight_budget(WEB_N as u64);

    let run_once = |trace: bool| {
        let env = DiskEnv::new_temp(IoConfig::new(MATRIX_BLOCK, mem)).unwrap();
        let g = smoke_web(&env);
        let guard = trace.then(|| obs::install(Rc::new(MemSink::new()) as Rc<dyn obs::Sink>));
        let out = ExtScc::new(&env, ExtSccConfig::optimized()).run(&g).unwrap();
        drop(guard);
        (out.report.total_ios, out.report.n_sccs)
    };

    let (plain_ios, plain_sccs) = run_once(false);
    let (traced_ios, traced_sccs) = run_once(true);
    assert_eq!(plain_ios, traced_ios, "spans must only read counters");
    assert_eq!(plain_sccs, traced_sccs);
}

#[test]
fn trace_human_cli_matches_golden() {
    // Golden file: regenerate with
    //   cargo test --test trace -- --ignored regenerate_trace_golden
    // or by running the command below by hand and redirecting stdout to
    //   tests/golden/trace_smoke.txt
    let dir = std::env::temp_dir().join(format!("scc-trace-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let out = run_trace_cli(&dir, "human");
    let golden = include_str!("golden/trace_smoke.txt");
    assert_eq!(
        out, golden,
        "scc run --trace=human output drifted from tests/golden/trace_smoke.txt \
         (if the change is intentional, regenerate the golden file)"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trace_json_is_deterministic_jsonl_without_wall_times() {
    let dir = std::env::temp_dir().join(format!("scc-trace-json-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let out = run_trace_cli(&dir, "json");
    assert!(!out.is_empty());
    for line in out.lines() {
        assert!(line.starts_with('{') && line.ends_with('}'), "not JSONL: {line}");
    }
    assert!(out.lines().next().unwrap().contains("\"span\":\"run\""));
    assert!(out.contains("\"t\":\"end\""));
    assert!(out.contains("\"ios\""));
    assert!(
        !out.contains("wall"),
        "wall times are opt-in (--trace-wall) to keep the stream deterministic"
    );
    // Determinism is the whole point of logical counters: byte-identical
    // across runs.
    let again = run_trace_cli(&dir, "json");
    assert_eq!(out, again);
    std::fs::remove_dir_all(&dir).ok();
}

/// Materializes the smoke web graph as a `.ceg`, runs
/// `scc run --trace=<mode>` on it under the matrix geometry, and returns
/// stdout (labels are routed to a file so stdout is purely the trace).
fn run_trace_cli(dir: &std::path::Path, mode: &str) -> String {
    let env = DiskEnv::new_temp(IoConfig::new(MATRIX_BLOCK, 1 << 20)).unwrap();
    let ceg = dir.join("web.ceg");
    smoke_web(&env).save_binary(&ceg).unwrap();

    let mem = tight_budget(WEB_N as u64);
    let r = scc_bin()
        .args(["run", "--input"])
        .arg(&ceg)
        .args([
            "--block",
            &MATRIX_BLOCK.to_string(),
            "--mem",
            &mem.to_string(),
            &format!("--trace={mode}"),
        ])
        .arg("--out")
        .arg(dir.join(format!("labels-{mode}.txt")))
        .output()
        .expect("binary runs");
    assert!(
        r.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&r.stderr)
    );
    String::from_utf8(r.stdout).unwrap()
}

/// Regenerates `tests/golden/trace_smoke.txt` in place. Run explicitly:
/// `cargo test --test trace -- --ignored regenerate_trace_golden`.
#[test]
#[ignore]
fn regenerate_trace_golden() {
    let dir = std::env::temp_dir().join(format!("scc-trace-regen-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let out = run_trace_cli(&dir, "human");
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/trace_smoke.txt");
    std::fs::write(&path, out).unwrap();
    std::fs::remove_dir_all(&dir).ok();
}
