//! Differential conformance suite: the full `ce-harness` scenario matrix —
//! {workload family × memory budget × storage backend × buffer pool ×
//! fault-injection point} × every registered `SccAlgorithm` — must pass.
//!
//! Scale is controlled by the `HARNESS_SCALE` env var (`smoke` default,
//! `full` for the extended registry, larger workloads and the roomy-memory
//! regime), so tier-1 `cargo test` stays fast while CI or a developer can
//! opt into the big sweep.

use contract_expand::harness::{
    full_registry, normalize_partition, registry, run_matrix, verify_graph, CellOutcome,
    HarnessScale,
};
use contract_expand::prelude::*;

#[test]
fn full_matrix_is_green() {
    let scale = HarnessScale::from_env();
    let report = run_matrix(scale).expect("matrix runs");
    assert!(
        report.all_ok(),
        "conformance failures:\n{}\n{report}",
        report.failures().join("\n")
    );

    // The acceptance shape of the sweep: >= 6 workload families, 2 backends
    // x 2 cache settings, and the 5 external engines + 2 oracles.
    let families: std::collections::BTreeSet<&str> =
        report.rows.iter().map(|r| r.family).collect();
    assert!(families.len() >= 6, "families: {families:?}");
    let storages: std::collections::BTreeSet<&str> =
        report.rows.iter().map(|r| r.storage).collect();
    assert_eq!(
        storages.len(),
        5,
        "2 backends x 2 cache settings + the strict-budget scenario expected: {storages:?}"
    );
    assert!(storages.contains("strict"), "strict M-total scenario present");
    assert!(report.algos.len() >= 7, "5 engines + 2 oracles: {:?}", report.algos);
    let (runs, pass, dnf, fail) = report.tally();
    assert_eq!(runs, pass + dnf + fail);
    assert!(pass > 0 && fail == 0);
    assert!(
        report.determinism_groups > 0,
        "the logical-I/O determinism check must actually compare groups"
    );

    // The planner layer: one plan per (family x budget), the planned engine
    // passed everywhere, and every scenario round-tripped an index.
    assert_eq!(report.planner_rows.len(), families.len() * {
        let budgets: std::collections::BTreeSet<&str> =
            report.rows.iter().map(|r| r.budget).collect();
        budgets.len()
    });
    assert!(report.planner_violations.is_empty(), "{:?}", report.planner_violations);
    assert_eq!(report.index_scenarios, report.rows.len());
    assert!(report.index_violations.is_empty(), "{:?}", report.index_violations);
    assert!(report.strict_note.contains("pool"), "{}", report.strict_note);
}

#[test]
fn registry_covers_the_papers_evaluation() {
    let names: Vec<&str> = registry().iter().map(|a| a.name()).collect();
    for required in ["Ext-SCC", "Ext-SCC-Op", "Semi-SCC", "DFS-SCC", "EM-SCC", "Tarjan", "Kosaraju"]
    {
        assert!(names.contains(&required), "{required} missing from {names:?}");
    }
    // Only EM-SCC is allowed to stall by design.
    for algo in full_registry() {
        assert_eq!(algo.may_stall(), algo.name() == "EM-SCC", "{}", algo.name());
    }
}

#[test]
fn verify_graph_flags_a_wrong_partition() {
    // A sanity check *of the harness itself*: a corrupted labeling must be
    // caught. We fake a broken algorithm by comparing two different graphs'
    // partitions through the public normalization helper.
    let a = normalize_partition(&[0, 0, 2, 2]);
    let b = normalize_partition(&[0, 0, 0, 3]);
    assert_ne!(a, b, "different partitions must not normalize equal");

    // And the end-to-end entry point still accepts a correct one.
    let env = DiskEnv::new_temp(IoConfig::new(512, 8 << 10)).unwrap();
    let g = gen::nested_cycles(&env, 2, 2, 3).unwrap();
    let verdicts = verify_graph(&env, &g).unwrap();
    assert!(verdicts.iter().all(|v| v.ok()), "{verdicts:?}");
    let tarjan = &verdicts[0];
    match tarjan.outcome {
        CellOutcome::Pass { n_sccs, .. } => assert_eq!(n_sccs, 2),
        ref other => panic!("oracle should pass, got {other:?}"),
    }
}

#[test]
fn matrix_runs_are_reproducible() {
    // Two sweeps of the same scenario produce identical summaries (no RNG
    // leakage, no wall-clock in the report, no hash-map ordering).
    let env = DiskEnv::new_temp(IoConfig::new(512, 8 << 10)).unwrap();
    let g = gen::rmat(&env, &gen::RmatSpec::graph500(6, 4, 3)).unwrap();
    let a: Vec<String> = verify_graph(&env, &g)
        .unwrap()
        .iter()
        .map(|v| format!("{} {}", v.algo, v.outcome))
        .collect();
    let b: Vec<String> = verify_graph(&env, &g)
        .unwrap()
        .iter()
        .map(|v| format!("{} {}", v.algo, v.outcome))
        .collect();
    assert_eq!(a, b);
}
