//! Gate over the committed `BENCH_pr10.json` parallel-sort trajectory
//! (PR 10's multi-core hot paths): the file must exist, carry the full
//! family × threads grid, price **bit-identical logical I/O at every
//! thread count**, and match the `BENCH_pr6.json` Ext-SCC-Op column
//! exactly — the single-thread scenario is unchanged, so any drift is a
//! real regression. Wall-clock scaling is asserted only **when the file
//! was recorded on a host with at least 4 CPUs** (`host_cpus` header): on
//! a 1-CPU container the N-thread/1-thread ratio measures the scheduler,
//! not the sort, and can legitimately be below 1x.

use ce_bench::trajectory::{parse_cells, parse_host_cpus, parse_par_cells};

const BENCH: &str = include_str!("../BENCH_pr10.json");
const BASELINE: &str = include_str!("../BENCH_pr6.json");

/// The smoke families the grid must cover (same set as the engine
/// trajectory emitter).
const FAMILIES: [&str; 4] = ["web", "cycle", "dag", "gnm"];

#[test]
fn par_grid_is_complete_and_sane() {
    let cells = parse_par_cells(BENCH);
    for family in FAMILIES {
        let of_family: Vec<_> = cells.iter().filter(|c| c.family == family).collect();
        assert!(
            of_family.iter().any(|c| c.threads == 1),
            "missing {family} threads=1 cell"
        );
        assert!(
            of_family.iter().any(|c| c.threads > 1),
            "missing {family} parallel cell"
        );
        for c in &of_family {
            assert_eq!(c.outcome, "ok", "{}: outcome {}", c.key(), c.outcome);
            assert!(c.logical_ios > 0, "{}: zero logical I/O", c.key());
            assert!(
                c.wall_ms.is_finite() && c.wall_ms > 0.0,
                "{}: bad wall {}",
                c.key(),
                c.wall_ms
            );
        }
    }
    assert!(
        parse_host_cpus(BENCH).is_some(),
        "BENCH_pr10.json must record host_cpus; scaling gates depend on it"
    );
}

#[test]
fn logical_io_is_thread_count_invariant() {
    // The tentpole contract, pinned on the committed artifact: every
    // family's cells agree on logical_ios no matter the thread count.
    let cells = parse_par_cells(BENCH);
    for family in FAMILIES {
        let ios: Vec<u64> = cells
            .iter()
            .filter(|c| c.family == family)
            .map(|c| c.logical_ios)
            .collect();
        assert!(!ios.is_empty(), "no cells for {family}");
        assert!(
            ios.windows(2).all(|w| w[0] == w[1]),
            "{family}: logical I/O varies across thread counts: {ios:?}"
        );
    }
}

#[test]
fn single_thread_column_matches_the_pr6_baseline_exactly() {
    // bench_par runs the exact scenario of the engine trajectory, so the
    // threads=1 logical I/O must equal BENCH_pr6's Ext-SCC-Op column bit
    // for bit — no regression, no unexplained improvement.
    let cells = parse_par_cells(BENCH);
    let baseline = parse_cells(BASELINE);
    for family in FAMILIES {
        let ours = cells
            .iter()
            .find(|c| c.family == family && c.threads == 1)
            .unwrap_or_else(|| panic!("missing {family}@1t"));
        let base = baseline
            .iter()
            .find(|c| c.key() == format!("{family}/Ext-SCC-Op"))
            .unwrap_or_else(|| panic!("missing {family}/Ext-SCC-Op in BENCH_pr6.json"));
        assert_eq!(
            ours.logical_ios, base.logical_ios,
            "{family}: threads=1 logical I/O drifted from the PR 6 baseline"
        );
    }
}

#[test]
fn wall_clock_scaling_holds_where_the_host_can_show_it() {
    let host_cpus = parse_host_cpus(BENCH).expect("host_cpus recorded");
    if host_cpus < 4 {
        eprintln!(
            "skipping scaling assertion: BENCH_pr10.json was recorded on \
             {host_cpus} CPU(s)"
        );
        return;
    }
    // On a >= 4-CPU host the parallel run must not be slower than 1.2x the
    // single-thread wall on any family (a loose bound: the win shows up on
    // the big sorts; tiny families are dominated by constant setup).
    let cells = parse_par_cells(BENCH);
    for family in FAMILIES {
        let wall = |pred: &dyn Fn(u64) -> bool| {
            cells
                .iter()
                .find(|c| c.family == family && pred(c.threads))
                .expect(family)
                .wall_ms
        };
        let (one, par) = (wall(&|t| t == 1), wall(&|t| t > 1));
        assert!(
            par <= 1.2 * one,
            "{family}: parallel wall {par} ms exceeds 1.2x single-thread {one} ms \
             on a {host_cpus}-CPU host"
        );
    }
}
