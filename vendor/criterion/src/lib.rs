//! Minimal, API-compatible stub of the `criterion` crate for offline builds.
//!
//! Implements the surface this workspace's benches use: [`Criterion`],
//! [`BenchmarkGroup`] (`sample_size`, `throughput`, `bench_function`,
//! `bench_with_input`, `finish`), [`Bencher::iter`], [`BenchmarkId`],
//! [`Throughput`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Instead of criterion's statistical machinery, each benchmark runs a
//! fixed number of timed iterations (the group's `sample_size`, default 10)
//! and prints the mean wall-clock time per iteration. `cargo bench` output
//! is one line per benchmark; no plots or `target/criterion` artifacts.

use std::fmt;
use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Unit annotation for reported throughput. Stored but only echoed in the
/// output line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
    BytesDecimal(u64),
}

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to the benchmark closure; `iter` times the supplied routine.
pub struct Bencher {
    samples: usize,
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One untimed warm-up iteration.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters = self.samples as u64;
    }
}

fn report(group: Option<&str>, id: &str, b: &Bencher, throughput: Option<Throughput>) {
    let per_iter = if b.iters == 0 {
        Duration::ZERO
    } else {
        b.elapsed / b.iters as u32
    };
    let thr = match throughput {
        Some(Throughput::Elements(n)) if per_iter > Duration::ZERO => {
            format!("  ({:.0} elem/s)", n as f64 / per_iter.as_secs_f64())
        }
        Some(Throughput::Bytes(n)) | Some(Throughput::BytesDecimal(n))
            if per_iter > Duration::ZERO =>
        {
            format!("  ({:.0} B/s)", n as f64 / per_iter.as_secs_f64())
        }
        _ => String::new(),
    };
    match group {
        Some(g) => println!("{g}/{id}: {per_iter:?}/iter over {} iters{thr}", b.iters),
        None => println!("{id}: {per_iter:?}/iter over {} iters{thr}", b.iters),
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for compatibility; the stub's iteration count is fixed by
    /// `sample_size`, not a time budget.
    pub fn measurement_time(&mut self, _duration: Duration) -> &mut Self {
        self
    }

    /// Accepted for compatibility; the stub does no warm-up tuning.
    pub fn warm_up_time(&mut self, _duration: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: self.samples,
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        report(Some(&self.name), &id.to_string(), &b, self.throughput);
        self
    }

    pub fn bench_with_input<I, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: self.samples,
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut b, input);
        report(Some(&self.name), &id.to_string(), &b, self.throughput);
        self
    }

    pub fn finish(self) {}
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: 10,
            throughput: None,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: 10,
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        report(None, &id.to_string(), &b, None);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("demo");
        g.sample_size(3).throughput(Throughput::Elements(100));
        let mut runs = 0usize;
        g.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        // 3 timed + 1 warm-up.
        assert_eq!(runs, 4);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("demo");
        g.sample_size(2);
        g.bench_with_input(BenchmarkId::new("square", 7), &7u64, |b, &n| {
            b.iter(|| black_box(n * n));
        });
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
        assert_eq!(BenchmarkId::from_parameter(32).to_string(), "32");
    }
}
