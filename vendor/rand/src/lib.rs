//! Minimal, API-compatible stub of the `rand` crate for offline builds.
//!
//! Implements exactly the surface this workspace uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and [`Rng`]'s `gen_range` / `gen_bool` /
//! `gen` over integer and float ranges. The generator is xoshiro256++
//! seeded through SplitMix64 — deterministic per seed, but its stream is
//! not identical to upstream `rand 0.8`'s ChaCha12 `StdRng`.

/// Low-level source of randomness.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Seedable generators. Only `seed_from_u64` is provided.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a range (`0..n`, `0..=n`, or an `f64` range).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli sample: `true` with probability `p` (clamped to [0, 1]).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        // 53 random mantissa bits give a uniform f64 in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    /// Sample a value of a [`Standard`]-distributed type.
    fn gen<T>(&mut self) -> T
    where
        T: Standard,
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable uniformly over their whole domain (stand-in for
/// `rand::distributions::Standard`).
pub trait Standard {
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

pub mod distributions {
    pub mod uniform {
        use crate::RngCore;
        use std::ops::{Range, RangeInclusive};

        /// Ranges that can produce a single uniform sample.
        pub trait SampleRange<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        // Lemire-style unbiased bounded sampling on u64 widths.
        fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
            debug_assert!(span > 0);
            let zone = u64::MAX - (u64::MAX - span + 1) % span;
            loop {
                let v = rng.next_u64();
                if v <= zone {
                    return v % span;
                }
            }
        }

        macro_rules! impl_int_range {
            ($($t:ty),*) => {$(
                impl SampleRange<$t> for Range<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "empty gen_range");
                        let span = (self.end as u64).wrapping_sub(self.start as u64);
                        self.start + bounded_u64(rng, span) as $t
                    }
                }
                impl SampleRange<$t> for RangeInclusive<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        let (lo, hi) = (*self.start(), *self.end());
                        assert!(lo <= hi, "empty gen_range");
                        let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                        if span == 0 {
                            // Full-width range: any u64 reinterprets uniformly.
                            return rng.next_u64() as $t;
                        }
                        lo + bounded_u64(rng, span) as $t
                    }
                }
            )*};
        }
        impl_int_range!(u8, u16, u32, u64, usize);

        impl SampleRange<f64> for Range<f64> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
                assert!(self.start < self.end, "empty gen_range");
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                self.start + unit * (self.end - self.start)
            }
        }
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The stub's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0usize..=5);
            assert!(w <= 5);
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn gen_range_covers_small_domain() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
