//! Minimal, API-compatible stub of the `proptest` crate for offline builds.
//!
//! Supports the surface this workspace's property tests use: the
//! [`proptest!`] macro with a `#![proptest_config(...)]` header,
//! `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` / `prop_assume!`,
//! [`strategy::Strategy`] with `prop_flat_map` / `prop_map`, [`strategy::Just`],
//! [`arbitrary::any`], range and tuple strategies, and
//! `prop::collection::{vec, btree_map, btree_set}` plus `prop::option::of`.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case panics with the full generated input.
//! * **Deterministic RNG.** Each test function derives its stream from the
//!   `PROPTEST_RNG_SEED` environment variable (default `0xC0FFEE`) and the
//!   test's own name, so runs are reproducible by construction and no
//!   failure-persistence files are written.

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod test_runner {
    use super::*;

    /// Configuration accepted by `#![proptest_config(...)]`. Only `cases`
    /// is honoured; the other fields exist for source compatibility.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
        /// Accepted but unused (no shrinking in the stub).
        pub max_shrink_iters: u32,
        /// Accepted but unused (no failure persistence in the stub).
        pub failure_persistence: Option<()>,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_shrink_iters: 0,
                failure_persistence: None,
            }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assert*` failed with this message.
        Fail(String),
        /// `prop_assume!` rejected the input.
        Reject,
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
    }

    pub type TestCaseResult = Result<(), TestCaseError>;

    /// The per-test RNG. Derived deterministically; see the crate docs.
    pub struct TestRng(pub StdRng);

    impl rand::RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    fn base_seed() -> u64 {
        match std::env::var("PROPTEST_RNG_SEED") {
            Ok(s) => s
                .parse::<u64>()
                .unwrap_or_else(|_| panic!("PROPTEST_RNG_SEED must be a u64, got {s:?}")),
            Err(_) => 0xC0FFEE,
        }
    }

    /// Drive one property: run `config.cases` cases (rejections don't count
    /// against the budget, up to a global rejection cap), panic on failure.
    pub fn run<F>(config: ProptestConfig, test_name: &str, mut case: F)
    where
        F: FnMut(&mut TestRng) -> TestCaseResult,
    {
        // Mix the test name into the seed so different properties in one
        // process see different streams even with the same base seed.
        let base = base_seed();
        let mut seed = base;
        for b in test_name.bytes() {
            seed = seed.rotate_left(8) ^ u64::from(b) ^ 0x9E37_79B9_7F4A_7C15;
        }
        let mut rng = TestRng(StdRng::seed_from_u64(seed));
        let mut passed = 0u32;
        let mut rejected = 0u32;
        let max_rejects = config.cases.saturating_mul(16).max(1024);
        while passed < config.cases {
            match case(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject) => {
                    rejected += 1;
                    if rejected > max_rejects {
                        panic!(
                            "proptest stub: {test_name} rejected {rejected} inputs \
                             (passed {passed}/{} cases); assume() is too strict",
                            config.cases
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest stub: {test_name} failed after {passed} passing cases \
                         (reproduce with PROPTEST_RNG_SEED={base}; no shrinking): {msg}"
                    );
                }
            }
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use rand::distributions::uniform::SampleRange;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A generator of values of type `Value`.
    ///
    /// Unlike upstream there is no value tree or shrinking: a strategy just
    /// produces a value from the test RNG.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_flat_map<F, S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> S,
            S: Strategy,
        {
            FlatMap { outer: self, f }
        }

        fn prop_map<F, T>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Object-safe boxed strategy.
    pub struct BoxedStrategy<T>(Box<dyn StrategyObj<Value = T>>);

    trait StrategyObj {
        type Value;
        fn generate_obj(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy> StrategyObj for S {
        type Value = S::Value;
        fn generate_obj(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate_obj(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct FlatMap<S, F> {
        outer: S,
        f: F,
    }

    impl<S, F, Inner> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> Inner,
        Inner: Strategy,
    {
        type Value = Inner::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let outer = self.outer.generate(rng);
            (self.f)(outer).generate(rng)
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, T> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.clone().sample_single(&mut rng.0)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::{Rng, RngCore};
    use std::marker::PhantomData;

    /// Types with a canonical "anything goes" strategy.
    pub trait Arbitrary: Sized {
        fn arb(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arb(rng: &mut TestRng) -> Self {
                    rng.0.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arb(rng: &mut TestRng) -> Self {
            rng.0.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arb(rng: &mut TestRng) -> Self {
            rng.gen_range(0.0f64..1.0)
        }
    }

    macro_rules! impl_arbitrary_tuple {
        ($($name:ident),+) => {
            impl<$($name: Arbitrary),+> Arbitrary for ($($name,)+) {
                fn arb(rng: &mut TestRng) -> Self {
                    ($($name::arb(rng),)+)
                }
            }
        };
    }
    impl_arbitrary_tuple!(A);
    impl_arbitrary_tuple!(A, B);
    impl_arbitrary_tuple!(A, B, C);
    impl_arbitrary_tuple!(A, B, C, D);

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arb(rng)
        }
    }

    /// `any::<T>()` — the canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// The `prop::` namespace (`prop::collection::vec`, `prop::option::of`, ...).
pub mod prop {
    pub mod collection {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        use rand::Rng;
        use std::collections::{BTreeMap, BTreeSet};
        use std::ops::{Range, RangeInclusive};

        /// Collection size specification (`0..250`, `1..=40`, or an exact
        /// length).
        #[derive(Debug, Clone)]
        pub struct SizeRange {
            lo: usize,
            hi_inclusive: usize,
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
            }
        }

        impl From<RangeInclusive<usize>> for SizeRange {
            fn from(r: RangeInclusive<usize>) -> Self {
                assert!(r.start() <= r.end(), "empty size range");
                SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
            }
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { lo: n, hi_inclusive: n }
            }
        }

        impl SizeRange {
            fn pick(&self, rng: &mut TestRng) -> usize {
                rng.gen_range(self.lo..=self.hi_inclusive)
            }
        }

        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let len = self.size.pick(rng);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// `Vec` of `size` elements drawn from `element`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy { element, size: size.into() }
        }

        pub struct BTreeMapStrategy<K, V> {
            key: K,
            value: V,
            size: SizeRange,
        }

        impl<K, V> Strategy for BTreeMapStrategy<K, V>
        where
            K: Strategy,
            V: Strategy,
            K::Value: Ord,
        {
            type Value = BTreeMap<K::Value, V::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let target = self.size.pick(rng);
                let mut map = BTreeMap::new();
                // Duplicate keys shrink the map; keep drawing (bounded) until
                // the target is met, as upstream does.
                let mut budget = target * 32 + 64;
                while map.len() < target && budget > 0 {
                    map.insert(self.key.generate(rng), self.value.generate(rng));
                    budget -= 1;
                }
                assert!(
                    map.len() >= self.size.lo,
                    "btree_map: key domain too small for requested size {}",
                    self.size.lo
                );
                map
            }
        }

        /// `BTreeMap` with `size` entries; keys drawn from `key`.
        pub fn btree_map<K: Strategy, V: Strategy>(
            key: K,
            value: V,
            size: impl Into<SizeRange>,
        ) -> BTreeMapStrategy<K, V>
        where
            K::Value: Ord,
        {
            BTreeMapStrategy { key, value, size: size.into() }
        }

        pub struct BTreeSetStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S> Strategy for BTreeSetStrategy<S>
        where
            S: Strategy,
            S::Value: Ord,
        {
            type Value = BTreeSet<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let target = self.size.pick(rng);
                let mut set = BTreeSet::new();
                let mut budget = target * 32 + 64;
                while set.len() < target && budget > 0 {
                    set.insert(self.element.generate(rng));
                    budget -= 1;
                }
                assert!(
                    set.len() >= self.size.lo,
                    "btree_set: element domain too small for requested size {}",
                    self.size.lo
                );
                set
            }
        }

        /// `BTreeSet` with `size` elements drawn from `element`.
        pub fn btree_set<S: Strategy>(
            element: S,
            size: impl Into<SizeRange>,
        ) -> BTreeSetStrategy<S>
        where
            S::Value: Ord,
        {
            BTreeSetStrategy { element, size: size.into() }
        }
    }

    pub mod option {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        use rand::Rng;

        pub struct OptionStrategy<S>(S);

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                if rng.gen_bool(0.5) {
                    Some(self.0.generate(rng))
                } else {
                    None
                }
            }
        }

        /// `Option` that is `Some` about half the time.
        pub fn of<S: Strategy>(element: S) -> OptionStrategy<S> {
            OptionStrategy(element)
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// The main macro: one or more property test functions, optionally preceded
/// by `#![proptest_config(expr)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_each!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_each!{
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_each {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[allow(unused_mut)]
        fn $name() {
            $crate::test_runner::run($cfg, stringify!($name), |__rng| {
                let ($($pat,)+) = (
                    $($crate::strategy::Strategy::generate(&($strat), __rng),)+
                );
                $body
                Ok(())
            });
        }
        $crate::__proptest_each!{ ($cfg) $($rest)* }
    };
}

/// Like `assert!` but aborts only the current case with a formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Like `assert_eq!` for property bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($lhs), stringify!($rhs), l, r
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l == *r,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)*), l, r
        );
    }};
}

/// Like `assert_ne!` for property bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($lhs), stringify!($rhs), l
        );
    }};
}

/// Reject the current input (does not count against the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn ranges_are_in_bounds(x in 3u32..17, y in 0usize..=4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y <= 4);
        }

        #[test]
        fn vec_respects_size(v in prop::collection::vec(any::<u32>(), 2..10)) {
            prop_assert!((2..10).contains(&v.len()));
        }

        #[test]
        fn flat_map_and_just((n, v) in (1u32..8).prop_flat_map(|n| {
            (Just(n), prop::collection::vec(0..n, 0..16))
        })) {
            prop_assert!((1..8).contains(&n));
            prop_assert!(v.iter().all(|&x| x < n));
        }

        #[test]
        fn assume_rejects(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }

        #[test]
        fn btree_set_meets_minimum(s in prop::collection::btree_set(0u32..1000, 2..20)) {
            prop_assert!(s.len() >= 2 && s.len() < 20);
        }

        #[test]
        fn options_mix(ops in prop::collection::vec(prop::option::of(any::<u8>()), 1..64)) {
            prop_assert!(!ops.is_empty());
        }
    }

    #[test]
    fn determinism_under_fixed_seed() {
        // Two runs of the same generator sequence agree.
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let s = crate::prop::collection::vec(crate::arbitrary::any::<u32>(), 5..9);
        let mut r1 = TestRng(StdRng::seed_from_u64(1));
        let mut r2 = TestRng(StdRng::seed_from_u64(1));
        assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
    }
}
