//! Small shared helpers for the CLI, the examples and embedding
//! applications.

use ce_extmem::DiskEnv;

/// The one-line storage/physical-counter report shared by every `--stats`
/// flag (`scc run`, `scc index build`, `scc index query`): backend kind,
/// buffer-pool size, physical transfers and the pool hit rate.
///
/// One formatter keeps the three subcommands' stats output identical in
/// shape, so scripts can parse any of them the same way.
pub fn storage_stats(env: &DiskEnv) -> String {
    format!(
        "storage: {} backend, {} cache blocks; {}",
        env.options().backend.name(),
        env.options().cache_blocks,
        env.phys()
    )
}

/// Parses a byte size with an optional binary suffix: `"64"`, `"64K"`,
/// `"64M"`, `"4G"` (suffixes are case-insensitive, powers of 1024).
///
/// One implementation for every `scc` subcommand and example — bare
/// suffixes (`"K"`), non-digits, signs and overflowing products are
/// rejected with a message naming the offending input. Signs are rejected
/// uniformly: `usize::from_str` would happily take `"+4K"` while `"-4K"`
/// fails, and a size flag that accepts one sign but not the other reads
/// like a parser bug, so any non-digit start is refused.
///
/// ```
/// use contract_expand::util::parse_size;
/// assert_eq!(parse_size("64K"), Ok(64 << 10));
/// assert_eq!(parse_size("3m"), Ok(3 << 20));
/// assert_eq!(parse_size("512"), Ok(512));
/// assert!(parse_size("K").unwrap_err().contains("missing digits"));
/// assert!(parse_size("+4K").unwrap_err().contains("bad size"));
/// assert!(parse_size("-4K").unwrap_err().contains("bad size"));
/// ```
pub fn parse_size(s: &str) -> Result<usize, String> {
    let (digits, mult) = match s.chars().last() {
        Some('K') | Some('k') => (&s[..s.len() - 1], 1usize << 10),
        Some('M') | Some('m') => (&s[..s.len() - 1], 1 << 20),
        Some('G') | Some('g') => (&s[..s.len() - 1], 1 << 30),
        _ => (s, 1),
    };
    if digits.is_empty() {
        return Err(format!("bad size {s:?}: missing digits before the suffix"));
    }
    if !digits.starts_with(|c: char| c.is_ascii_digit()) {
        return Err(format!("bad size {s:?}: must start with a digit"));
    }
    digits
        .parse::<usize>()
        .map_err(|e| format!("bad size {s:?}: {e}"))
        .and_then(|v| {
            v.checked_mul(mult)
                .ok_or_else(|| format!("bad size {s:?}: overflows"))
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_parse_with_and_without_suffixes() {
        assert_eq!(parse_size("0"), Ok(0));
        assert_eq!(parse_size("123"), Ok(123));
        assert_eq!(parse_size("2K"), Ok(2048));
        assert_eq!(parse_size("2k"), Ok(2048));
        assert_eq!(parse_size("64M"), Ok(64 << 20));
        assert_eq!(parse_size("1G"), Ok(1 << 30));
    }

    #[test]
    fn storage_stats_reports_backend_pool_and_hit_rate() {
        use ce_extmem::{DiskEnv, EnvOptions, IoConfig};
        let cfg = IoConfig::new(256, 4 << 10);
        let env = DiskEnv::new_temp_with(cfg, EnvOptions::pooled(&cfg)).unwrap();
        let line = storage_stats(&env);
        assert!(line.starts_with("storage: "), "{line}");
        assert!(line.contains("backend"), "{line}");
        assert!(line.contains("cache blocks"), "{line}");
        assert!(line.contains("hit rate"), "{line}");
    }

    #[test]
    fn bad_sizes_are_rejected_with_clear_messages() {
        for bare in ["K", "m", "G"] {
            let err = parse_size(bare).unwrap_err();
            assert!(err.contains("missing digits"), "{bare}: {err}");
        }
        assert!(parse_size("").unwrap_err().contains("missing digits"));
        assert!(parse_size("lots").unwrap_err().contains("bad size"));
        assert!(parse_size("12x").unwrap_err().contains("bad size"));
        // Signs are rejected uniformly: `+` parses as a usize but not as a
        // size, and ` 4K` (stray whitespace) is no better.
        for signed in ["-4K", "+4K", "+4", "-4", " 4K"] {
            let err = parse_size(signed).unwrap_err();
            assert!(err.contains("bad size"), "{signed}: {err}");
        }
        assert!(parse_size("18446744073709551615K")
            .unwrap_err()
            .contains("overflows"));
    }
}
