//! `SccSession` — the builder-style front door of the workspace.
//!
//! The paper's whole point is choosing the right regime: semi-external when
//! the node array fits in `M`, Ext-SCC(-Op) when it does not. A session
//! packages that choice so callers never pick an engine by hand:
//!
//! ```text
//! SccSession::open(cfg, opts)      an I/O environment (M, B, backend, pool)
//!     .source(GraphSource::...)    text / binary / in-memory / generator
//!     .plan()                      explainable engine choice (no I/O spent)
//!     .build_index(path)           run the planned engine, materialize a
//!                                  persistent queryable SccIndex
//! ```
//!
//! [`SccSession::plan`] consults the [`Planner`] wired to the semi-external
//! implementation's actual memory footprint
//! ([`ce_semi_scc::planner_for`]), so the session's decision is exactly the
//! regime test the Ext-SCC driver itself applies; [`SccSession::engine`]
//! overrides it. [`SccSession::build_index`] turns the computation into the
//! *indexing step* of the session: its product is not a throwaway label
//! file but a reopenable [`SccIndex`] artifact answering `component_of` /
//! `same_component` / `component_size` point queries in a bounded number of
//! block reads, all priced in the same logical I/O model as the build.

use std::io;
use std::path::{Path, PathBuf};

use ce_extmem::{DiskEnv, EnvOptions, IoConfig, IoSnapshot};
use ce_graph::algo::{AlgoBudget, AlgoError, SccAlgorithm, SccRun};
use ce_graph::delta::{CompactReport, DeltaBatch, DeltaEngine, DeltaReport};
use ce_graph::labels::condense_counted;
use ce_graph::planner::{Engine, Plan, Planner};
use ce_graph::{EdgeListGraph, SccIndex};
use ce_semi_scc::{SemiSccAlgo, SemiSccKind};

/// A deferred graph builder run against the session's environment (the
/// payload of [`GraphSource::Generator`]).
pub type GeneratorFn = Box<dyn FnOnce(&DiskEnv) -> io::Result<EdgeListGraph>>;

/// Where a session's graph comes from.
pub enum GraphSource {
    /// Whitespace-separated `src dst` text file (`#`/`%` comments allowed).
    Text(PathBuf),
    /// Compact `CEG1` binary file (see
    /// [`EdgeListGraph::save_binary`]).
    Binary(PathBuf),
    /// An in-memory edge list over the node universe `0..n_nodes`.
    InMemory {
        /// Number of nodes (`|V|`; must exceed every id used).
        n_nodes: u64,
        /// The edges.
        edges: Vec<(u32, u32)>,
    },
    /// A workload generator (e.g. the closures around
    /// [`ce_graph::gen`]) run against the session's environment.
    Generator(GeneratorFn),
}

impl GraphSource {
    /// Text-file source (see [`GraphSource::Text`]).
    pub fn text(path: impl Into<PathBuf>) -> GraphSource {
        GraphSource::Text(path.into())
    }

    /// Binary-file source (see [`GraphSource::Binary`]).
    pub fn binary(path: impl Into<PathBuf>) -> GraphSource {
        GraphSource::Binary(path.into())
    }

    /// In-memory source (see [`GraphSource::InMemory`]).
    pub fn in_memory(n_nodes: u64, edges: Vec<(u32, u32)>) -> GraphSource {
        GraphSource::InMemory { n_nodes, edges }
    }

    /// Generator source (see [`GraphSource::Generator`]).
    pub fn generator(
        f: impl FnOnce(&DiskEnv) -> io::Result<EdgeListGraph> + 'static,
    ) -> GraphSource {
        GraphSource::Generator(Box::new(f))
    }

    /// Picks [`GraphSource::Binary`] for `.ceg` paths and
    /// [`GraphSource::Text`] otherwise — the CLI's input convention.
    pub fn from_path(path: impl Into<PathBuf>) -> GraphSource {
        let path = path.into();
        if path.extension().is_some_and(|e| e == "ceg") {
            GraphSource::Binary(path)
        } else {
            GraphSource::Text(path)
        }
    }
}

/// Everything [`SccSession::build_index`] produced.
pub struct IndexBuild {
    /// The plan that chose the engine (also printed by `scc plan`).
    pub plan: Plan,
    /// The engine run: label partition plus its logical/physical I/O cost.
    pub run: SccRun,
    /// The reopened artifact, ready for queries.
    pub index: SccIndex,
    /// Logical I/O spent materializing the artifact (over and above
    /// `run.ios`), including the optional condensation.
    pub build_ios: IoSnapshot,
}

/// A builder-style SCC computation session. See the module docs.
pub struct SccSession {
    env: DiskEnv,
    graph: Option<EdgeListGraph>,
    engine_override: Option<Engine>,
    condense: bool,
    index_path: Option<PathBuf>,
}

impl SccSession {
    /// Opens a session over a fresh temporary scratch environment.
    pub fn open(cfg: IoConfig, opts: EnvOptions) -> io::Result<SccSession> {
        Ok(SccSession::wrap(DiskEnv::new_temp_with(cfg, opts)?))
    }

    /// Opens a session whose scratch space lives in `dir` (kept on exit).
    pub fn open_in(dir: &Path, cfg: IoConfig, opts: EnvOptions) -> io::Result<SccSession> {
        Ok(SccSession::wrap(DiskEnv::new_in_with(dir, cfg, opts)?))
    }

    /// Wraps an existing environment (shared scratch / custom lifecycle).
    pub fn wrap(env: DiskEnv) -> SccSession {
        SccSession {
            env,
            graph: None,
            engine_override: None,
            condense: false,
            index_path: None,
        }
    }

    /// The session's I/O environment (for direct scratch access, stats
    /// snapshots and physical counters).
    pub fn env(&self) -> &DiskEnv {
        &self.env
    }

    /// Loads the graph. Consumes and returns the session so sourcing chains
    /// off [`SccSession::open`].
    pub fn source(mut self, source: GraphSource) -> io::Result<SccSession> {
        let g = match source {
            GraphSource::Text(path) => EdgeListGraph::from_text(&self.env, &path, None)?,
            GraphSource::Binary(path) => EdgeListGraph::open_binary(&self.env, &path)?,
            GraphSource::InMemory { n_nodes, edges } => {
                EdgeListGraph::from_slice(&self.env, n_nodes, &edges)?
            }
            GraphSource::Generator(f) => f(&self.env)?,
        };
        self.graph = Some(g);
        Ok(self)
    }

    /// Forces an engine instead of the planner's choice (the plan's reason
    /// records the override).
    pub fn engine(mut self, engine: Engine) -> SccSession {
        self.engine_override = Some(engine);
        self
    }

    /// Embeds the condensation DAG in the artifact built by
    /// [`SccSession::build_index`] (computed externally, `O(sort(|E|))`).
    pub fn condensation(mut self, yes: bool) -> SccSession {
        self.condense = yes;
        self
    }

    /// The loaded graph, if a source has been set.
    pub fn graph(&self) -> Option<&EdgeListGraph> {
        self.graph.as_ref()
    }

    /// The planner this session consults — wired to the semi-external
    /// implementation's actual memory footprint.
    pub fn planner(&self) -> Planner {
        ce_semi_scc::planner_for(self.env.config())
    }

    /// Plans the run: deterministic engine choice with the reason and the
    /// predicted contraction passes. Costs no I/O beyond the source load.
    pub fn plan(&self) -> io::Result<Plan> {
        let g = self.require_graph()?;
        Ok(self
            .planner()
            .plan_with_override(g.n_nodes(), self.engine_override))
    }

    /// Runs the planned engine and returns the measured run (labels +
    /// logical/physical I/O). Prefer [`SccSession::build_index`] when the
    /// answers should outlive the session.
    pub fn run(&self) -> Result<SccRun, AlgoError> {
        self.run_budgeted(&AlgoBudget::unlimited())
    }

    /// [`SccSession::run`] under a resource budget.
    pub fn run_budgeted(&self, budget: &AlgoBudget) -> Result<SccRun, AlgoError> {
        let plan = self.plan()?;
        let g = self.require_graph()?;
        engine_algorithm(plan.engine).run_budgeted(&self.env, g, budget)
    }

    /// Runs the planned engine and materializes the persistent queryable
    /// [`SccIndex`] at `path` (truncating any previous artifact there), then
    /// reopens it — so the returned index has already survived one
    /// close/reopen round trip including its checksum validation. The path
    /// is remembered as the session's live index, the target of
    /// [`SccSession::apply_delta`] / [`SccSession::compact_index`].
    ///
    /// With [`SccSession::condensation`] enabled the artifact embeds the
    /// **counted** condensation DAG (multiplicity per component edge) — the
    /// form the delta engine requires.
    pub fn build_index(&mut self, path: &Path) -> Result<IndexBuild, AlgoError> {
        let plan = self.plan()?;
        let g = self.require_graph()?;
        let run = engine_algorithm(plan.engine).run(&self.env, g)?;
        let before = self.env.stats().snapshot();
        let dag = if self.condense {
            let _sp = ce_extmem::io_span!(&self.env, "condense", nodes = g.n_nodes());
            Some(condense_counted(&self.env, g, &run.labels)?)
        } else {
            None
        };
        let n_sccs = SccIndex::build(&self.env, path, &run.labels, g.n_nodes(), dag.as_ref())?;
        if n_sccs != run.n_sccs {
            return Err(AlgoError::Io(io::Error::other(format!(
                "index found {n_sccs} components, engine reported {}",
                run.n_sccs
            ))));
        }
        let index = SccIndex::open(&self.env, path)?;
        let build_ios = self.env.stats().snapshot().since(&before);
        self.index_path = Some(path.to_path_buf());
        Ok(IndexBuild {
            plan,
            run,
            index,
            build_ios,
        })
    }

    /// Attaches a pre-existing [`SccIndex`] artifact (built earlier, perhaps
    /// by another process) as the session's live index. Validates it opens
    /// against this session's environment. The session's graph must be the
    /// one the artifact was built from — the delta engine checks the node
    /// universe and re-derives induced subgraphs from it during
    /// re-verification.
    pub fn attach_index(&mut self, path: &Path) -> io::Result<()> {
        SccIndex::open(&self.env, path)?;
        self.index_path = Some(path.to_path_buf());
        Ok(())
    }

    /// The session's live index artifact, if one was built or attached.
    pub fn index_path(&self) -> Option<&Path> {
        self.index_path.as_deref()
    }

    /// Opens the incremental-maintenance engine over the session's live
    /// index (see [`DeltaEngine`]). The open re-validates the artifact and
    /// the journal sidecar; hold the engine across a stream of batches to
    /// pay that once. Requires an index built with
    /// [`SccSession::condensation`] (the CLI flag `--with-condensation`).
    pub fn delta_engine(&self) -> io::Result<DeltaEngine<'_>> {
        let g = self.require_graph()?;
        let path = self.index_path.as_deref().ok_or_else(|| {
            io::Error::other(
                "session has no index: call .build_index(path) or .attach_index(path) first",
            )
        })?;
        DeltaEngine::open(&self.env, g, path)
    }

    /// Applies one [`DeltaBatch`] of edge insertions/deletions to the
    /// session's live index, materializing a new crash-safe generation.
    /// Convenience over [`SccSession::delta_engine`] — opens the engine,
    /// applies, drops it (per-batch validation cost; stream through
    /// [`SccSession::delta_engine`] to amortize).
    pub fn apply_delta(&self, batch: &DeltaBatch) -> io::Result<DeltaReport> {
        self.delta_engine()?.apply(batch)
    }

    /// Re-verifies every dirty component of the session's live index (the
    /// explicit form of the lazy re-verification queries perform).
    pub fn compact_index(&self) -> io::Result<CompactReport> {
        self.delta_engine()?.compact()
    }

    fn require_graph(&self) -> io::Result<&EdgeListGraph> {
        self.graph
            .as_ref()
            .ok_or_else(|| io::Error::other("session has no source: call .source(...) first"))
    }
}

/// The [`SccAlgorithm`] implementation behind each planner [`Engine`].
pub fn engine_algorithm(engine: Engine) -> Box<dyn SccAlgorithm> {
    match engine {
        Engine::SemiScc => Box::new(SemiSccAlgo::new(SemiSccKind::Coloring)),
        Engine::ExtScc => Box::new(ce_core::ExtSccAlgo::baseline()),
        Engine::ExtSccOp => Box::new(ce_core::ExtSccAlgo::optimized()),
    }
}
