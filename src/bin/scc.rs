//! `scc` — command-line SCC computation over text or binary edge lists.
//!
//! ```text
//! scc run   --input graph.txt [--mem 64M] [--block 64K] [--baseline]
//!           [--backend file|mem] [--cache-blocks N]
//!           [--out labels.txt] [--condense dag.txt] [--export-binary g.ceg]
//!           [--scratch DIR] [--stats] [--trace human|json] [--trace-wall]
//! scc plan  --input graph.txt [--mem 64M] [--block 64K]
//!           [--engine auto|semi-scc|ext-scc|ext-scc-op]
//! scc index build --input graph.txt --out graph.sccidx
//!           [--mem 64M] [--block 64K] [--backend file|mem] [--cache-blocks N]
//!           [--scratch DIR] [--engine auto|semi-scc|ext-scc|ext-scc-op]
//!           [--condense] [--stats]
//! scc index query --index graph.sccidx -u NODE [-v NODE] [--stats]
//! scc verify [--scale smoke|full]
//! scc --version | -V
//! ```
//!
//! Flat flags (`scc --input ...`) remain a byte-compatible alias for
//! `scc run`. Every subcommand accepts `--help`.
//!
//! `scc plan` prints the engine the planner would choose for the input
//! under the given budget — with the reason and the predicted contraction
//! passes — without running anything.
//!
//! `scc index build` runs the *planned* engine (override with `--engine`)
//! and materializes the persistent queryable index artifact; `scc index
//! query` answers `component_of` / `same_component` / `component_size`
//! from that artifact alone — no recomputation — reporting the logical
//! query I/O under `--stats`.
//!
//! `scc verify` runs the `ce-harness` differential conformance matrix:
//! every registered algorithm (the five external engines plus the in-memory
//! oracles) over every scenario {workload family × memory budget × backend ×
//! buffer pool × fault point}, asserting partition equivalence,
//! logical-I/O determinism, planner agreement and index round-trips. The
//! summary table on stdout is deterministic and byte-stable
//! (golden-tested); the exit code is 0 iff every check passed.
//!
//! Input: whitespace-separated `src dst` lines (`#`/`%` comments allowed).
//! Output: `node scc_representative` lines sorted by node. `--condense`
//! additionally writes the condensation DAG's edge list (computed
//! externally). The memory budget is honoured end to end: the node set of
//! the input graph is never loaded into RAM.
//!
//! `--backend` picks where scratch blocks live (on disk or in memory) and
//! `--cache-blocks` sizes the buffer pool in front of it (default: `M / B`
//! frames; 0 disables the pool). Neither changes the *logical* block-I/O
//! numbers reported — those count model transfers, as in the paper — but
//! `--stats` additionally reports the *physical* transfers and the pool's
//! hit/miss counters.
//!
//! `--trace human` prints the run's I/O-attribution span tree on stdout:
//! one node per contraction iteration and per phase (Get-V, Get-E,
//! expansion, sort passes, coloring rounds), each annotated with the
//! logical/physical I/O it consumed, plus the metrics registry. Leaf
//! deltas (including synthetic `(self)` rows) sum exactly to the run's
//! total logical I/O. `--trace json` emits the same spans as JSON lines.
//! Both are deterministic — wall-clock times appear only under
//! `--trace-wall`. Tracing never changes the logical I/O counts.

use std::io::{BufWriter, Write};
use std::path::PathBuf;
use std::process::ExitCode;

use contract_expand::graph::labels::condense_external;
use contract_expand::prelude::*;
use contract_expand::util::{parse_size, storage_stats};

/// `--trace` output format.
#[derive(Clone, Copy, PartialEq, Eq)]
enum TraceMode {
    Human,
    Json,
}

impl TraceMode {
    fn parse(v: &str) -> Result<TraceMode, String> {
        match v {
            "human" => Ok(TraceMode::Human),
            "json" => Ok(TraceMode::Json),
            other => Err(format!("bad --trace {other:?}; use human|json")),
        }
    }
}

struct Options {
    input: PathBuf,
    out: Option<PathBuf>,
    condense: Option<PathBuf>,
    export_binary: Option<PathBuf>,
    scratch: Option<PathBuf>,
    mem: usize,
    block: usize,
    backend: BackendKind,
    cache_blocks: Option<usize>,
    baseline: bool,
    stats: bool,
    trace: Option<TraceMode>,
    trace_wall: bool,
}

fn usage() -> &'static str {
    "usage: scc run --input graph.txt|graph.ceg [--mem 64M] [--block 64K] [--baseline]\n\
     \x20              [--backend file|mem] [--cache-blocks N]\n\
     \x20              [--out labels.txt] [--condense dag.txt] [--export-binary g.ceg]\n\
     \x20              [--scratch DIR] [--stats] [--trace human|json] [--trace-wall]\n\
     \x20      scc plan --input graph.txt|graph.ceg [--mem 64M] [--block 64K]\n\
     \x20              [--engine auto|semi-scc|ext-scc|ext-scc-op]\n\
     \x20      scc index build --input graph.txt|graph.ceg --out graph.sccidx\n\
     \x20              [--mem 64M] [--block 64K] [--backend file|mem] [--cache-blocks N]\n\
     \x20              [--scratch DIR] [--engine auto|semi-scc|ext-scc|ext-scc-op]\n\
     \x20              [--condense (flag: embed the condensation DAG)] [--stats]\n\
     \x20      scc index query --index graph.sccidx -u NODE [-v NODE] [--stats]\n\
     \x20      scc verify [--scale smoke|full]\n\
     \x20      scc --version | -V\n\
     \x20 (flat `scc --input ...` stays a byte-compatible alias for `scc run`)"
}

/// `scc verify [--scale smoke|full]` — run the differential conformance
/// matrix (every registered algorithm on every scenario) and print the
/// summary table. Exits 0 iff every check passed.
fn run_verify(args: &[String]) -> Result<ExitCode, String> {
    let mut scale = HarnessScale::Smoke;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                let v = it.next().ok_or("--scale requires a value")?;
                scale = HarnessScale::parse(v)
                    .ok_or_else(|| format!("bad --scale {v:?}; use smoke|full"))?;
            }
            "--help" | "-h" => {
                println!("{}", usage());
                return Ok(ExitCode::SUCCESS);
            }
            other => return Err(format!("unknown verify argument {other:?}\n{}", usage())),
        }
    }
    let report = contract_expand::harness::run_matrix(scale)
        .map_err(|e| format!("conformance matrix failed to run: {e}"))?;
    print!("{report}");
    if report.all_ok() {
        Ok(ExitCode::SUCCESS)
    } else {
        for failure in report.failures() {
            eprintln!("conformance failure: {failure}");
        }
        Ok(ExitCode::FAILURE)
    }
}

/// Parses `--engine auto|semi-scc|ext-scc|ext-scc-op` values.
fn parse_engine(v: &str) -> Result<Option<Engine>, String> {
    if v == "auto" {
        return Ok(None);
    }
    Engine::parse(v)
        .map(Some)
        .ok_or_else(|| format!("bad --engine {v:?}; use auto|semi-scc|ext-scc|ext-scc-op"))
}

/// `Ok(None)` means `--help` was requested: print usage and exit 0.
fn parse_args(args: &[String]) -> Result<Option<Options>, String> {
    let mut args = args.iter();
    let mut opts = Options {
        input: PathBuf::new(),
        out: None,
        condense: None,
        export_binary: None,
        scratch: None,
        mem: 64 << 20,
        block: 64 << 10,
        backend: BackendKind::File,
        cache_blocks: None,
        baseline: false,
        stats: false,
        trace: None,
        trace_wall: false,
    };
    let mut have_input = false;
    while let Some(a) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match a.as_str() {
            "--input" => {
                opts.input = PathBuf::from(value("--input")?);
                have_input = true;
            }
            "--out" => opts.out = Some(PathBuf::from(value("--out")?)),
            "--condense" => opts.condense = Some(PathBuf::from(value("--condense")?)),
            "--export-binary" => {
                opts.export_binary = Some(PathBuf::from(value("--export-binary")?))
            }
            "--scratch" => opts.scratch = Some(PathBuf::from(value("--scratch")?)),
            "--mem" => opts.mem = parse_size(value("--mem")?)?,
            "--block" => opts.block = parse_size(value("--block")?)?,
            "--backend" => opts.backend = value("--backend")?.parse()?,
            "--cache-blocks" => {
                let v = value("--cache-blocks")?;
                opts.cache_blocks = Some(
                    v.parse::<usize>()
                        .map_err(|e| format!("bad --cache-blocks {v:?}: {e}"))?,
                );
            }
            "--baseline" => opts.baseline = true,
            "--stats" => opts.stats = true,
            "--trace" => opts.trace = Some(TraceMode::parse(value("--trace")?)?),
            "--trace-wall" => opts.trace_wall = true,
            "--help" | "-h" => return Ok(None),
            other => match other.strip_prefix("--trace=") {
                Some(v) => opts.trace = Some(TraceMode::parse(v)?),
                None => return Err(format!("unknown argument {other:?}\n{}", usage())),
            },
        }
    }
    if !have_input {
        return Err(format!("--input is required\n{}", usage()));
    }
    check_model(opts.mem, opts.block)?;
    Ok(Some(opts))
}

/// The CLI-facing `M >= 2B` model check shared by every subcommand.
fn check_model(mem: usize, block: usize) -> Result<(), String> {
    if block == 0 {
        return Err("block size must be nonzero".into());
    }
    match block.checked_mul(2) {
        Some(two_blocks) if mem >= two_blocks => Ok(()),
        _ => Err("memory budget must be at least two blocks".into()),
    }
}

fn run(opts: &Options) -> Result<(), Box<dyn std::error::Error>> {
    let cfg = IoConfig::new(opts.block, opts.mem);
    let env_opts = EnvOptions {
        backend: opts.backend,
        cache_blocks: opts.cache_blocks.unwrap_or_else(|| cfg.blocks_in_memory()),
    };
    let env = match &opts.scratch {
        Some(dir) => DiskEnv::new_in_with(dir, cfg, env_opts)?,
        None => DiskEnv::new_temp_with(cfg, env_opts)?,
    };

    // `.ceg` files use the compact binary format; anything else is text.
    let graph = if opts.input.extension().is_some_and(|e| e == "ceg") {
        EdgeListGraph::open_binary(&env, &opts.input)?
    } else {
        EdgeListGraph::from_text(&env, &opts.input, None)?
    };
    eprintln!(
        "loaded {}: |V| = {}, |E| = {}",
        opts.input.display(),
        graph.n_nodes(),
        graph.n_edges()
    );
    if let Some(path) = &opts.export_binary {
        graph.save_binary(path)?;
        eprintln!("binary copy written to {}", path.display());
    }
    if opts.stats {
        let s = contract_expand::graph::stats::graph_stats(&env, &graph)?;
        eprintln!(
            "avg degree {:.2}, max in/out {}/{}, sources {}, sinks {}, isolated {}, self-loops {}",
            s.avg_degree(),
            s.max_in,
            s.max_out,
            s.sources,
            s.sinks,
            s.isolated,
            s.self_loops
        );
    }

    let cfg = if opts.baseline {
        ExtSccConfig::baseline()
    } else {
        ExtSccConfig::optimized()
    };

    // `--trace` installs a sink for the engine run only, so the root `run`
    // span covers exactly the I/O the report attributes to the run. Spans
    // only read the existing atomic counters: the logical I/O numbers (and
    // the default stdout/stderr output) are bit-identical with and without
    // tracing.
    use std::rc::Rc;
    let mut mem_sink: Option<Rc<contract_expand::obs::MemSink>> = None;
    let mut json_sink: Option<Rc<contract_expand::obs::JsonSink>> = None;
    let guard = opts.trace.map(|mode| match mode {
        TraceMode::Human => {
            let s = Rc::new(contract_expand::obs::MemSink::new());
            mem_sink = Some(s.clone());
            contract_expand::obs::install(s)
        }
        TraceMode::Json => {
            let s = Rc::new(if opts.trace_wall {
                contract_expand::obs::JsonSink::with_wall()
            } else {
                contract_expand::obs::JsonSink::new()
            });
            json_sink = Some(s.clone());
            contract_expand::obs::install(s)
        }
    });
    if guard.is_some() {
        contract_expand::obs::metrics::reset();
    }
    let out = ExtScc::new(&env, cfg).run(&graph)?;
    drop(guard);
    if let Some(sink) = mem_sink {
        let roots = sink.take();
        print!(
            "{}",
            contract_expand::obs::MemSink::render_human(
                &roots,
                &["ios", "rand", "phys"],
                opts.trace_wall
            )
        );
        let metrics = contract_expand::obs::metrics::snapshot();
        if !metrics.is_empty() {
            println!("metrics:");
            print!("{}", contract_expand::obs::metrics::render(&metrics));
        }
    } else if let Some(sink) = json_sink {
        print!("{}", sink.take());
    }
    eprintln!(
        "{} SCCs in {} contraction iterations, {} block I/Os, {:.2?}",
        out.report.n_sccs,
        out.report.iterations(),
        out.report.total_ios.total_ios(),
        out.report.total_wall
    );
    if opts.stats {
        eprintln!("{}", out.report);
        eprintln!("{}", storage_stats(&env));
    }

    // Stream labels to the output without materializing them.
    let sink: Box<dyn std::io::Write> = match &opts.out {
        Some(path) => Box::new(std::fs::File::create(path)?),
        None => Box::new(std::io::stdout().lock()),
    };
    let mut w = BufWriter::new(sink);
    let mut r = out.labels.reader()?;
    while let Some(l) = r.next()? {
        writeln!(w, "{} {}", l.node, l.scc)?;
    }
    w.flush()?;

    if let Some(path) = &opts.condense {
        let dag = condense_external(&env, &graph, &out.labels)?;
        let mut w = BufWriter::new(std::fs::File::create(path)?);
        let mut r = dag.edges().reader()?;
        while let Some(e) = r.next()? {
            writeln!(w, "{} {}", e.src, e.dst)?;
        }
        w.flush()?;
        eprintln!(
            "condensation: {} edges written to {}",
            dag.n_edges(),
            path.display()
        );
    }
    Ok(())
}

/// `scc plan` — print the planner's engine choice for an input without
/// running anything. Deterministic stdout: graph size, engine, reason,
/// predicted passes.
fn run_plan(args: &[String]) -> Result<ExitCode, String> {
    let mut input: Option<PathBuf> = None;
    let mut mem = 64usize << 20;
    let mut block = 64usize << 10;
    let mut engine: Option<Engine> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match a.as_str() {
            "--input" => input = Some(PathBuf::from(value("--input")?)),
            "--mem" => mem = parse_size(value("--mem")?)?,
            "--block" => block = parse_size(value("--block")?)?,
            "--engine" => engine = parse_engine(value("--engine")?)?,
            "--help" | "-h" => {
                println!("{}", usage());
                return Ok(ExitCode::SUCCESS);
            }
            other => return Err(format!("unknown plan argument {other:?}\n{}", usage())),
        }
    }
    let input = input.ok_or_else(|| format!("--input is required\n{}", usage()))?;
    check_model(mem, block)?;
    let cfg = IoConfig::new(block, mem);

    let plan_it = || -> Result<(u64, u64, Plan), Box<dyn std::error::Error>> {
        let mut session = SccSession::open(cfg, EnvOptions::pooled(&cfg))?
            .source(GraphSource::from_path(&input))?;
        if let Some(e) = engine {
            session = session.engine(e);
        }
        let g = session.graph().expect("sourced");
        Ok((g.n_nodes(), g.n_edges(), session.plan()?))
    };
    // Runtime failures (missing input, parse errors) exit 1 like every
    // other subcommand; only usage errors take the exit-2 path above.
    match plan_it() {
        Ok((n_nodes, n_edges, plan)) => {
            println!("graph: |V| = {n_nodes}, |E| = {n_edges}");
            println!("{plan}");
            Ok(ExitCode::SUCCESS)
        }
        Err(e) => {
            eprintln!("error: {e}");
            Ok(ExitCode::FAILURE)
        }
    }
}

/// `scc index build` — run the planned engine and materialize the
/// persistent queryable index artifact.
fn run_index_build(args: &[String]) -> Result<ExitCode, String> {
    let mut input: Option<PathBuf> = None;
    let mut out: Option<PathBuf> = None;
    let mut scratch: Option<PathBuf> = None;
    let mut mem = 64usize << 20;
    let mut block = 64usize << 10;
    let mut backend = BackendKind::File;
    let mut cache_blocks: Option<usize> = None;
    let mut engine: Option<Engine> = None;
    let mut condense = false;
    let mut stats = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match a.as_str() {
            "--input" => input = Some(PathBuf::from(value("--input")?)),
            "--out" => out = Some(PathBuf::from(value("--out")?)),
            "--scratch" => scratch = Some(PathBuf::from(value("--scratch")?)),
            "--mem" => mem = parse_size(value("--mem")?)?,
            "--block" => block = parse_size(value("--block")?)?,
            "--backend" => backend = value("--backend")?.parse()?,
            "--cache-blocks" => {
                let v = value("--cache-blocks")?;
                cache_blocks = Some(
                    v.parse::<usize>()
                        .map_err(|e| format!("bad --cache-blocks {v:?}: {e}"))?,
                );
            }
            "--engine" => engine = parse_engine(value("--engine")?)?,
            "--condense" => condense = true,
            "--stats" => stats = true,
            "--help" | "-h" => {
                println!("{}", usage());
                return Ok(ExitCode::SUCCESS);
            }
            other => return Err(format!("unknown index build argument {other:?}\n{}", usage())),
        }
    }
    let input = input.ok_or_else(|| format!("--input is required\n{}", usage()))?;
    let out = out.ok_or_else(|| format!("--out is required\n{}", usage()))?;
    check_model(mem, block)?;
    let cfg = IoConfig::new(block, mem);
    let env_opts = EnvOptions {
        backend,
        cache_blocks: cache_blocks.unwrap_or_else(|| cfg.blocks_in_memory()),
    };

    let build_it = || -> Result<(), Box<dyn std::error::Error>> {
        let mut session = match &scratch {
            Some(dir) => SccSession::open_in(dir, cfg, env_opts)?,
            None => SccSession::open(cfg, env_opts)?,
        }
        .source(GraphSource::from_path(&input))?
        .condensation(condense);
        if let Some(e) = engine {
            session = session.engine(e);
        }
        let g = session.graph().expect("sourced");
        eprintln!(
            "loaded {}: |V| = {}, |E| = {}",
            input.display(),
            g.n_nodes(),
            g.n_edges()
        );
        let built = session.build_index(&out)?;
        eprintln!(
            "plan: engine={} predicted_passes={} ({})",
            built.plan.engine, built.plan.predicted_passes, built.plan.reason
        );
        eprintln!(
            "{} SCCs, {} engine block I/Os, {} index-build block I/Os",
            built.run.n_sccs,
            built.run.ios.total_ios(),
            built.build_ios.total_ios()
        );
        eprintln!(
            "index written to {}: {} nodes, {} components{}, {} bytes",
            out.display(),
            built.index.n_nodes(),
            built.index.n_sccs(),
            if built.index.has_condensation() {
                format!(", {} condensation edges", built.index.n_dag_edges())
            } else {
                String::new()
            },
            built.index.len_bytes()
        );
        if stats {
            eprintln!("engine I/O: {}", built.run.ios);
            eprintln!("{}", storage_stats(session.env()));
        }
        Ok(())
    };
    match build_it() {
        Ok(()) => Ok(ExitCode::SUCCESS),
        Err(e) => {
            eprintln!("error: {e}");
            Ok(ExitCode::FAILURE)
        }
    }
}

/// `scc index query` — answer component queries from an artifact, no
/// recomputation.
fn run_index_query(args: &[String]) -> Result<ExitCode, String> {
    let mut index: Option<PathBuf> = None;
    let mut u: Option<u32> = None;
    let mut v: Option<u32> = None;
    let mut stats = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        let node = |name: &str, s: &str| -> Result<u32, String> {
            s.parse::<u32>().map_err(|e| format!("bad {name} {s:?}: {e}"))
        };
        match a.as_str() {
            "--index" => index = Some(PathBuf::from(value("--index")?)),
            "-u" => u = Some(node("-u", value("-u")?)?),
            "-v" => v = Some(node("-v", value("-v")?)?),
            "--stats" => stats = true,
            "--help" | "-h" => {
                println!("{}", usage());
                return Ok(ExitCode::SUCCESS);
            }
            other => return Err(format!("unknown index query argument {other:?}\n{}", usage())),
        }
    }
    let index = index.ok_or_else(|| format!("--index is required\n{}", usage()))?;
    let u = u.ok_or_else(|| format!("-u is required\n{}", usage()))?;

    let query_it = || -> Result<(), Box<dyn std::error::Error>> {
        // Queries need O(1) memory: a minimal unpooled environment keeps the
        // logical counters honest (every block read is visible).
        let env = DiskEnv::new_temp_with(
            IoConfig::new(4 << 10, 8 << 10),
            EnvOptions::unpooled(),
        )?;
        let mut idx = SccIndex::open(&env, &index)?;
        let open_ios = env.stats().snapshot();
        println!("component_of({u}) = {}", idx.component_of(u)?);
        println!("component_size({u}) = {}", idx.component_size(u)?);
        if let Some(v) = v {
            println!("same_component({u}, {v}) = {}", idx.same_component(u, v)?);
        }
        if stats {
            eprintln!(
                "index: {} nodes, {} components, {} bytes",
                idx.n_nodes(),
                idx.n_sccs(),
                idx.len_bytes()
            );
            eprintln!("open I/O: {open_ios}");
            eprintln!("query I/O: {}", env.stats().snapshot().since(&open_ios));
            eprintln!("{}", storage_stats(&env));
        }
        Ok(())
    };
    match query_it() {
        Ok(()) => Ok(ExitCode::SUCCESS),
        Err(e) => {
            eprintln!("error: {e}");
            Ok(ExitCode::FAILURE)
        }
    }
}

/// `scc index build|query` dispatch.
fn run_index(args: &[String]) -> Result<ExitCode, String> {
    match args.first().map(String::as_str) {
        Some("build") => run_index_build(&args[1..]),
        Some("query") => run_index_query(&args[1..]),
        Some("--help") | Some("-h") => {
            println!("{}", usage());
            Ok(ExitCode::SUCCESS)
        }
        Some(other) => Err(format!("unknown index subcommand {other:?}\n{}", usage())),
        None => Err(format!("index requires build|query\n{}", usage())),
    }
}

/// Flat-flag / `scc run` entry point (byte-compatible output).
fn run_flat(args: &[String]) -> ExitCode {
    let opts = match parse_args(args) {
        Ok(Some(o)) => o,
        Ok(None) => {
            println!("{}", usage());
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    match run(&opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let dispatch = |result: Result<ExitCode, String>| match result {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
    };
    match argv.first().map(String::as_str) {
        Some("--version") | Some("-V") => {
            println!("scc {}", env!("CARGO_PKG_VERSION"));
            ExitCode::SUCCESS
        }
        Some("verify") => dispatch(run_verify(&argv[1..])),
        Some("plan") => dispatch(run_plan(&argv[1..])),
        Some("index") => dispatch(run_index(&argv[1..])),
        Some("run") => run_flat(&argv[1..]),
        _ => run_flat(&argv),
    }
}
