//! `scc` — command-line SCC computation over text or binary edge lists.
//!
//! ```text
//! scc run   --input graph.txt [--mem 64M] [--block 64K] [--baseline]
//!           [--backend file|mem] [--cache-blocks N]
//!           [--out labels.txt] [--condense dag.txt] [--export-binary g.ceg]
//!           [--scratch DIR] [--stats] [--trace human|json] [--trace-wall]
//! scc plan  --input graph.txt [--mem 64M] [--block 64K]
//!           [--engine auto|semi-scc|ext-scc|ext-scc-op]
//! scc index build --input graph.txt --out graph.sccidx
//!           [--mem 64M] [--block 64K] [--backend file|mem] [--cache-blocks N]
//!           [--scratch DIR] [--engine auto|semi-scc|ext-scc|ext-scc-op]
//!           [--with-condensation] [--stats]
//! scc index query --index graph.sccidx -u NODE [-v NODE] [--stats]
//! scc index apply --index graph.sccidx --input graph.txt
//!           [--add "U V"]... [--remove "U V"]... [--deltas FILE]
//!           [--mem 64M] [--stats]
//! scc index compact --index graph.sccidx --input graph.txt [--mem 64M] [--stats]
//! scc serve --index graph.sccidx [--input graph.txt] [--threads N]
//!           [--cache-blocks N] [--stats]
//! scc serve --index graph.sccidx --queries K [--batch B] [--seed S] [--threads N]
//! scc serve --self-test [--threads N] [--nodes N] [--seed S]
//! scc verify [--scale smoke|full]
//! scc --version | -V
//! ```
//!
//! Flat flags (`scc --input ...`) remain a byte-compatible alias for
//! `scc run`. Every subcommand accepts `--help`.
//!
//! `scc plan` prints the engine the planner would choose for the input
//! under the given budget — with the reason and the predicted contraction
//! passes — without running anything.
//!
//! `scc index build` runs the *planned* engine (override with `--engine`)
//! and materializes the persistent queryable index artifact; `scc index
//! query` answers `component_of` / `same_component` / `component_size`
//! from that artifact alone — no recomputation — reporting the logical
//! query I/O under `--stats`.
//!
//! `scc serve` is the concurrent query loop over one open artifact: it
//! opens the index once behind a shared read-only block pool
//! (`SccIndexReader`) and answers query lines from stdin on `--threads`
//! worker threads, each holding its own cloned handle. The line protocol
//! (one answer line per query line, errors answered inline so the loop
//! never dies mid-stream):
//!
//! ```text
//! c U            -> component_of(U) = R
//! s U V          -> same_component(U, V) = true|false
//! z U            -> component_size(U) = S
//! b U1 U2 ...    -> component_of_many(k) = R1 R2 ...
//! +U V           -> applied +(U, V): KIND, generation G   (needs --input)
//! -U V           -> applied -(U, V): KIND, generation G   (needs --input)
//! ```
//!
//! The `+U V` / `-U V` mutation ops are enabled by giving `scc serve` the
//! base graph the index was built from (`--input graph.txt`): a single
//! writer applies each mutation through the incremental delta engine
//! ([`ce_graph::delta::DeltaEngine`]), materializes a new crash-safe index
//! generation on disk, and the loop atomically swaps the shared reader
//! handle — queries after the mutation line observe the new generation.
//! Mutations serialize in line order; runs of queries between them still
//! fan out across the worker threads. Without `--input`, mutation lines
//! are answered with an inline `error:` line, like any other bad input.
//!
//! `scc index apply` is the batch form of the same maintenance path: it
//! classifies `--add`/`--remove` pairs (or a `--deltas FILE` of `+U V` /
//! `-U V` lines) against the stored condensation DAG and commits one new
//! generation; `scc index compact` eagerly re-verifies every
//! deletion-dirtied component. Both require an index built with the
//! condensation DAG embedded (`scc index build --with-condensation`).
//!
//! `--queries K` serves a deterministic generated workload instead of
//! stdin and reports throughput; `--self-test` builds a scratch index from
//! a generated graph and replays a mixed workload on every thread against
//! the in-memory Tarjan oracle, additionally asserting that each thread's
//! per-query logical I/O is bit-identical to the owned single-reader path
//! (exit 0 iff everything matches). Query counts and throughput are
//! published to the `ce-obs` metrics registry (`serve.queries`,
//! `serve.qps`), printed under `--stats`.
//!
//! `scc verify` runs the `ce-harness` differential conformance matrix:
//! every registered algorithm (the five external engines plus the in-memory
//! oracles) over every scenario {workload family × memory budget × backend ×
//! buffer pool × fault point}, asserting partition equivalence,
//! logical-I/O determinism, planner agreement and index round-trips. The
//! summary table on stdout is deterministic and byte-stable
//! (golden-tested); the exit code is 0 iff every check passed.
//!
//! Input: whitespace-separated `src dst` lines (`#`/`%` comments allowed).
//! Output: `node scc_representative` lines sorted by node. `--condense`
//! additionally writes the condensation DAG's edge list (computed
//! externally). The memory budget is honoured end to end: the node set of
//! the input graph is never loaded into RAM.
//!
//! `--backend` picks where scratch blocks live (on disk or in memory) and
//! `--cache-blocks` sizes the buffer pool in front of it (default: `M / B`
//! frames; 0 disables the pool). Neither changes the *logical* block-I/O
//! numbers reported — those count model transfers, as in the paper — but
//! `--stats` additionally reports the *physical* transfers and the pool's
//! hit/miss counters.
//!
//! `--trace human` prints the run's I/O-attribution span tree on stdout:
//! one node per contraction iteration and per phase (Get-V, Get-E,
//! expansion, sort passes, coloring rounds), each annotated with the
//! logical/physical I/O it consumed, plus the metrics registry. Leaf
//! deltas (including synthetic `(self)` rows) sum exactly to the run's
//! total logical I/O. `--trace json` emits the same spans as JSON lines.
//! Both are deterministic — wall-clock times appear only under
//! `--trace-wall`. Tracing never changes the logical I/O counts.

use std::io::{BufWriter, Write};
use std::path::PathBuf;
use std::process::ExitCode;

use contract_expand::graph::labels::condense_external;
use contract_expand::prelude::*;
use contract_expand::util::{parse_size, storage_stats};

/// `--trace` output format.
#[derive(Clone, Copy, PartialEq, Eq)]
enum TraceMode {
    Human,
    Json,
}

impl TraceMode {
    fn parse(v: &str) -> Result<TraceMode, String> {
        match v {
            "human" => Ok(TraceMode::Human),
            "json" => Ok(TraceMode::Json),
            other => Err(format!("bad --trace {other:?}; use human|json")),
        }
    }
}

struct Options {
    input: PathBuf,
    out: Option<PathBuf>,
    condense: Option<PathBuf>,
    export_binary: Option<PathBuf>,
    scratch: Option<PathBuf>,
    mem: usize,
    block: usize,
    backend: BackendKind,
    cache_blocks: Option<usize>,
    threads: usize,
    baseline: bool,
    stats: bool,
    trace: Option<TraceMode>,
    trace_wall: bool,
}

fn usage() -> &'static str {
    "usage: scc run --input graph.txt|graph.ceg [--mem 64M] [--block 64K] [--baseline]\n\
     \x20              [--backend file|mem] [--cache-blocks N] [--threads N]\n\
     \x20              [--out labels.txt] [--condense dag.txt] [--export-binary g.ceg]\n\
     \x20              [--scratch DIR] [--stats] [--trace human|json] [--trace-wall]\n\
     \x20      scc plan --input graph.txt|graph.ceg [--mem 64M] [--block 64K]\n\
     \x20              [--engine auto|semi-scc|ext-scc|ext-scc-op]\n\
     \x20      scc index build --input graph.txt|graph.ceg --out graph.sccidx\n\
     \x20              [--mem 64M] [--block 64K] [--backend file|mem] [--cache-blocks N]\n\
     \x20              [--scratch DIR] [--engine auto|semi-scc|ext-scc|ext-scc-op]\n\
     \x20              [--with-condensation (embed the condensation DAG)] [--threads N]\n\
     \x20              [--stats]\n\
     \x20      scc index query --index graph.sccidx -u NODE [-v NODE] [--stats]\n\
     \x20      scc index apply --index graph.sccidx --input graph.txt|graph.ceg\n\
     \x20              [--add \"U V\"]... [--remove \"U V\"]... [--deltas FILE]\n\
     \x20              [--mem 64M] [--stats]\n\
     \x20      scc index compact --index graph.sccidx --input graph.txt|graph.ceg\n\
     \x20              [--mem 64M] [--stats]\n\
     \x20      scc serve --index graph.sccidx [--input graph.txt (enable +U V / -U V)]\n\
     \x20              [--threads N] [--cache-blocks N] [--stats]\n\
     \x20              [--queries K [--batch B] [--seed S]]\n\
     \x20      scc serve --self-test [--threads N] [--nodes N] [--seed S]\n\
     \x20      scc verify [--scale smoke|full] [--threads N]\n\
     \x20      scc --version | -V\n\
     \x20 (flat `scc --input ...` stays a byte-compatible alias for `scc run`)"
}

/// `scc verify [--scale smoke|full] [--threads N]` — run the differential
/// conformance matrix (every registered algorithm on every scenario) and
/// print the summary table. `--threads` sets the parallel side of the
/// thread-invariance axis (default 2). Exits 0 iff every check passed.
fn run_verify(args: &[String]) -> Result<ExitCode, String> {
    let mut scale = HarnessScale::Smoke;
    let mut threads = 2usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                let v = it.next().ok_or("--scale requires a value")?;
                scale = HarnessScale::parse(v)
                    .ok_or_else(|| format!("bad --scale {v:?}; use smoke|full"))?;
            }
            "--threads" => {
                let v = it.next().ok_or("--threads requires a value")?;
                threads = v
                    .parse()
                    .map_err(|_| format!("bad --threads {v:?}; expected a number"))?;
            }
            "--help" | "-h" => {
                println!("{}", usage());
                return Ok(ExitCode::SUCCESS);
            }
            other => return Err(format!("unknown verify argument {other:?}\n{}", usage())),
        }
    }
    if threads == 0 {
        eprintln!("error: --threads must be at least 1");
        return Ok(ExitCode::FAILURE);
    }
    let report = contract_expand::harness::run_matrix_with(scale, threads)
        .map_err(|e| format!("conformance matrix failed to run: {e}"))?;
    print!("{report}");
    if report.all_ok() {
        Ok(ExitCode::SUCCESS)
    } else {
        for failure in report.failures() {
            eprintln!("conformance failure: {failure}");
        }
        Ok(ExitCode::FAILURE)
    }
}

/// Parses `--engine auto|semi-scc|ext-scc|ext-scc-op` values.
fn parse_engine(v: &str) -> Result<Option<Engine>, String> {
    if v == "auto" {
        return Ok(None);
    }
    Engine::parse(v)
        .map(Some)
        .ok_or_else(|| format!("bad --engine {v:?}; use auto|semi-scc|ext-scc|ext-scc-op"))
}

/// `Ok(None)` means `--help` was requested: print usage and exit 0.
fn parse_args(args: &[String]) -> Result<Option<Options>, String> {
    let mut args = args.iter();
    let mut opts = Options {
        input: PathBuf::new(),
        out: None,
        condense: None,
        export_binary: None,
        scratch: None,
        mem: 64 << 20,
        block: 64 << 10,
        backend: BackendKind::File,
        cache_blocks: None,
        threads: 1,
        baseline: false,
        stats: false,
        trace: None,
        trace_wall: false,
    };
    let mut have_input = false;
    while let Some(a) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match a.as_str() {
            "--input" => {
                opts.input = PathBuf::from(value("--input")?);
                have_input = true;
            }
            "--out" => opts.out = Some(PathBuf::from(value("--out")?)),
            "--condense" => opts.condense = Some(PathBuf::from(value("--condense")?)),
            "--export-binary" => {
                opts.export_binary = Some(PathBuf::from(value("--export-binary")?))
            }
            "--scratch" => opts.scratch = Some(PathBuf::from(value("--scratch")?)),
            "--mem" => opts.mem = parse_size(value("--mem")?)?,
            "--block" => opts.block = parse_size(value("--block")?)?,
            "--backend" => opts.backend = value("--backend")?.parse()?,
            "--cache-blocks" => {
                let v = value("--cache-blocks")?;
                opts.cache_blocks = Some(
                    v.parse::<usize>()
                        .map_err(|e| format!("bad --cache-blocks {v:?}: {e}"))?,
                );
            }
            "--threads" => {
                let v = value("--threads")?;
                opts.threads = v
                    .parse::<usize>()
                    .map_err(|e| format!("bad --threads {v:?}: {e}"))?;
            }
            "--baseline" => opts.baseline = true,
            "--stats" => opts.stats = true,
            "--trace" => opts.trace = Some(TraceMode::parse(value("--trace")?)?),
            "--trace-wall" => opts.trace_wall = true,
            "--help" | "-h" => return Ok(None),
            other => match other.strip_prefix("--trace=") {
                Some(v) => opts.trace = Some(TraceMode::parse(v)?),
                None => return Err(format!("unknown argument {other:?}\n{}", usage())),
            },
        }
    }
    if !have_input {
        return Err(format!("--input is required\n{}", usage()));
    }
    check_model(opts.mem, opts.block)?;
    Ok(Some(opts))
}

/// The CLI-facing `M >= 2B` model check shared by every subcommand.
fn check_model(mem: usize, block: usize) -> Result<(), String> {
    if block == 0 {
        return Err("block size must be nonzero".into());
    }
    match block.checked_mul(2) {
        Some(two_blocks) if mem >= two_blocks => Ok(()),
        _ => Err("memory budget must be at least two blocks".into()),
    }
}

fn run(opts: &Options) -> Result<(), Box<dyn std::error::Error>> {
    let cfg = IoConfig::new(opts.block, opts.mem);
    let env_opts = EnvOptions {
        backend: opts.backend,
        cache_blocks: opts.cache_blocks.unwrap_or_else(|| cfg.blocks_in_memory()),
        ..EnvOptions::default()
    }
    .with_threads(opts.threads);
    let env = match &opts.scratch {
        Some(dir) => DiskEnv::new_in_with(dir, cfg, env_opts)?,
        None => DiskEnv::new_temp_with(cfg, env_opts)?,
    };

    // `.ceg` files use the compact binary format; anything else is text.
    let graph = if opts.input.extension().is_some_and(|e| e == "ceg") {
        EdgeListGraph::open_binary(&env, &opts.input)?
    } else {
        EdgeListGraph::from_text(&env, &opts.input, None)?
    };
    eprintln!(
        "loaded {}: |V| = {}, |E| = {}",
        opts.input.display(),
        graph.n_nodes(),
        graph.n_edges()
    );
    if let Some(path) = &opts.export_binary {
        graph.save_binary(path)?;
        eprintln!("binary copy written to {}", path.display());
    }
    if opts.stats {
        let s = contract_expand::graph::stats::graph_stats(&env, &graph)?;
        eprintln!(
            "avg degree {:.2}, max in/out {}/{}, sources {}, sinks {}, isolated {}, self-loops {}",
            s.avg_degree(),
            s.max_in,
            s.max_out,
            s.sources,
            s.sinks,
            s.isolated,
            s.self_loops
        );
    }

    let cfg = if opts.baseline {
        ExtSccConfig::baseline()
    } else {
        ExtSccConfig::optimized()
    };

    // `--trace` installs a sink for the engine run only, so the root `run`
    // span covers exactly the I/O the report attributes to the run. Spans
    // only read the existing atomic counters: the logical I/O numbers (and
    // the default stdout/stderr output) are bit-identical with and without
    // tracing.
    use std::rc::Rc;
    let mut mem_sink: Option<Rc<contract_expand::obs::MemSink>> = None;
    let mut json_sink: Option<Rc<contract_expand::obs::JsonSink>> = None;
    let guard = opts.trace.map(|mode| match mode {
        TraceMode::Human => {
            let s = Rc::new(contract_expand::obs::MemSink::new());
            mem_sink = Some(s.clone());
            contract_expand::obs::install(s)
        }
        TraceMode::Json => {
            let s = Rc::new(if opts.trace_wall {
                contract_expand::obs::JsonSink::with_wall()
            } else {
                contract_expand::obs::JsonSink::new()
            });
            json_sink = Some(s.clone());
            contract_expand::obs::install(s)
        }
    });
    if guard.is_some() {
        contract_expand::obs::metrics::reset();
    }
    let out = ExtScc::new(&env, cfg).run(&graph)?;
    drop(guard);
    if let Some(sink) = mem_sink {
        let roots = sink.take();
        print!(
            "{}",
            contract_expand::obs::MemSink::render_human(
                &roots,
                &["ios", "rand", "phys"],
                opts.trace_wall
            )
        );
        let metrics = contract_expand::obs::metrics::snapshot();
        if !metrics.is_empty() {
            println!("metrics:");
            print!("{}", contract_expand::obs::metrics::render(&metrics));
        }
    } else if let Some(sink) = json_sink {
        print!("{}", sink.take());
    }
    eprintln!(
        "{} SCCs in {} contraction iterations, {} block I/Os, {:.2?}",
        out.report.n_sccs,
        out.report.iterations(),
        out.report.total_ios.total_ios(),
        out.report.total_wall
    );
    if opts.stats {
        eprintln!("{}", out.report);
        eprintln!("{}", storage_stats(&env));
    }

    // Stream labels to the output without materializing them.
    let sink: Box<dyn std::io::Write> = match &opts.out {
        Some(path) => Box::new(std::fs::File::create(path)?),
        None => Box::new(std::io::stdout().lock()),
    };
    let mut w = BufWriter::new(sink);
    let mut r = out.labels.reader()?;
    while let Some(l) = r.next()? {
        writeln!(w, "{} {}", l.node, l.scc)?;
    }
    w.flush()?;

    if let Some(path) = &opts.condense {
        let dag = condense_external(&env, &graph, &out.labels)?;
        let mut w = BufWriter::new(std::fs::File::create(path)?);
        let mut r = dag.edges().reader()?;
        while let Some(e) = r.next()? {
            writeln!(w, "{} {}", e.src, e.dst)?;
        }
        w.flush()?;
        eprintln!(
            "condensation: {} edges written to {}",
            dag.n_edges(),
            path.display()
        );
    }
    Ok(())
}

/// `scc plan` — print the planner's engine choice for an input without
/// running anything. Deterministic stdout: graph size, engine, reason,
/// predicted passes.
fn run_plan(args: &[String]) -> Result<ExitCode, String> {
    let mut input: Option<PathBuf> = None;
    let mut mem = 64usize << 20;
    let mut block = 64usize << 10;
    let mut engine: Option<Engine> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match a.as_str() {
            "--input" => input = Some(PathBuf::from(value("--input")?)),
            "--mem" => mem = parse_size(value("--mem")?)?,
            "--block" => block = parse_size(value("--block")?)?,
            "--engine" => engine = parse_engine(value("--engine")?)?,
            "--help" | "-h" => {
                println!("{}", usage());
                return Ok(ExitCode::SUCCESS);
            }
            other => return Err(format!("unknown plan argument {other:?}\n{}", usage())),
        }
    }
    let input = input.ok_or_else(|| format!("--input is required\n{}", usage()))?;
    check_model(mem, block)?;
    let cfg = IoConfig::new(block, mem);

    let plan_it = || -> Result<(u64, u64, Plan), Box<dyn std::error::Error>> {
        let mut session = SccSession::open(cfg, EnvOptions::pooled(&cfg))?
            .source(GraphSource::from_path(&input))?;
        if let Some(e) = engine {
            session = session.engine(e);
        }
        let g = session.graph().expect("sourced");
        Ok((g.n_nodes(), g.n_edges(), session.plan()?))
    };
    // Runtime failures (missing input, parse errors) exit 1 like every
    // other subcommand; only usage errors take the exit-2 path above.
    match plan_it() {
        Ok((n_nodes, n_edges, plan)) => {
            println!("graph: |V| = {n_nodes}, |E| = {n_edges}");
            println!("{plan}");
            Ok(ExitCode::SUCCESS)
        }
        Err(e) => {
            eprintln!("error: {e}");
            Ok(ExitCode::FAILURE)
        }
    }
}

/// `scc index build` — run the planned engine and materialize the
/// persistent queryable index artifact.
fn run_index_build(args: &[String]) -> Result<ExitCode, String> {
    let mut input: Option<PathBuf> = None;
    let mut out: Option<PathBuf> = None;
    let mut scratch: Option<PathBuf> = None;
    let mut mem = 64usize << 20;
    let mut block = 64usize << 10;
    let mut backend = BackendKind::File;
    let mut cache_blocks: Option<usize> = None;
    let mut threads = 1usize;
    let mut engine: Option<Engine> = None;
    let mut condense = false;
    let mut stats = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match a.as_str() {
            "--input" => input = Some(PathBuf::from(value("--input")?)),
            "--out" => out = Some(PathBuf::from(value("--out")?)),
            "--scratch" => scratch = Some(PathBuf::from(value("--scratch")?)),
            "--mem" => mem = parse_size(value("--mem")?)?,
            "--block" => block = parse_size(value("--block")?)?,
            "--backend" => backend = value("--backend")?.parse()?,
            "--cache-blocks" => {
                let v = value("--cache-blocks")?;
                cache_blocks = Some(
                    v.parse::<usize>()
                        .map_err(|e| format!("bad --cache-blocks {v:?}: {e}"))?,
                );
            }
            "--threads" => {
                let v = value("--threads")?;
                threads = v
                    .parse::<usize>()
                    .map_err(|e| format!("bad --threads {v:?}: {e}"))?;
            }
            "--engine" => engine = parse_engine(value("--engine")?)?,
            // `--condense` is the historical spelling; `--with-condensation`
            // is what the delta-engine error messages name.
            "--condense" | "--with-condensation" => condense = true,
            "--stats" => stats = true,
            "--help" | "-h" => {
                println!("{}", usage());
                return Ok(ExitCode::SUCCESS);
            }
            other => return Err(format!("unknown index build argument {other:?}\n{}", usage())),
        }
    }
    let input = input.ok_or_else(|| format!("--input is required\n{}", usage()))?;
    let out = out.ok_or_else(|| format!("--out is required\n{}", usage()))?;
    check_model(mem, block)?;
    if threads == 0 {
        eprintln!("error: --threads must be at least 1");
        return Ok(ExitCode::FAILURE);
    }
    let cfg = IoConfig::new(block, mem);
    let env_opts = EnvOptions {
        backend,
        cache_blocks: cache_blocks.unwrap_or_else(|| cfg.blocks_in_memory()),
        ..EnvOptions::default()
    }
    .with_threads(threads);

    let build_it = || -> Result<(), Box<dyn std::error::Error>> {
        let mut session = match &scratch {
            Some(dir) => SccSession::open_in(dir, cfg, env_opts)?,
            None => SccSession::open(cfg, env_opts)?,
        }
        .source(GraphSource::from_path(&input))?
        .condensation(condense);
        if let Some(e) = engine {
            session = session.engine(e);
        }
        let g = session.graph().expect("sourced");
        eprintln!(
            "loaded {}: |V| = {}, |E| = {}",
            input.display(),
            g.n_nodes(),
            g.n_edges()
        );
        let built = session.build_index(&out)?;
        eprintln!(
            "plan: engine={} predicted_passes={} ({})",
            built.plan.engine, built.plan.predicted_passes, built.plan.reason
        );
        eprintln!(
            "{} SCCs, {} engine block I/Os, {} index-build block I/Os",
            built.run.n_sccs,
            built.run.ios.total_ios(),
            built.build_ios.total_ios()
        );
        eprintln!(
            "index written to {}: {} nodes, {} components{}, {} bytes",
            out.display(),
            built.index.n_nodes(),
            built.index.n_sccs(),
            if built.index.has_condensation() {
                format!(", {} condensation edges", built.index.n_dag_edges())
            } else {
                String::new()
            },
            built.index.len_bytes()
        );
        if stats {
            eprintln!("engine I/O: {}", built.run.ios);
            eprintln!("{}", storage_stats(session.env()));
        }
        Ok(())
    };
    match build_it() {
        Ok(()) => Ok(ExitCode::SUCCESS),
        Err(e) => {
            eprintln!("error: {e}");
            Ok(ExitCode::FAILURE)
        }
    }
}

/// `scc index query` — answer component queries from an artifact, no
/// recomputation.
fn run_index_query(args: &[String]) -> Result<ExitCode, String> {
    let mut index: Option<PathBuf> = None;
    let mut u: Option<u32> = None;
    let mut v: Option<u32> = None;
    let mut stats = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        let node = |name: &str, s: &str| -> Result<u32, String> {
            s.parse::<u32>().map_err(|e| format!("bad {name} {s:?}: {e}"))
        };
        match a.as_str() {
            "--index" => index = Some(PathBuf::from(value("--index")?)),
            "-u" => u = Some(node("-u", value("-u")?)?),
            "-v" => v = Some(node("-v", value("-v")?)?),
            "--stats" => stats = true,
            "--help" | "-h" => {
                println!("{}", usage());
                return Ok(ExitCode::SUCCESS);
            }
            other => return Err(format!("unknown index query argument {other:?}\n{}", usage())),
        }
    }
    let index = index.ok_or_else(|| format!("--index is required\n{}", usage()))?;
    let u = u.ok_or_else(|| format!("-u is required\n{}", usage()))?;

    let query_it = || -> Result<(), Box<dyn std::error::Error>> {
        // Queries need O(1) memory: a minimal unpooled environment keeps the
        // logical counters honest (every block read is visible).
        let env = DiskEnv::new_temp_with(
            IoConfig::new(4 << 10, 8 << 10),
            EnvOptions::unpooled(),
        )?;
        let mut idx = SccIndex::open(&env, &index)?;
        let open_ios = env.stats().snapshot();
        // Validate every requested node up front: a failing query must be
        // one clean error line, never answers for `-u` followed by a
        // mid-stream failure on `-v`.
        for x in std::iter::once(u).chain(v) {
            if x as u64 >= idx.n_nodes() {
                return Err(format!(
                    "node {x} out of range (index covers {} nodes)",
                    idx.n_nodes()
                )
                .into());
            }
        }
        println!("component_of({u}) = {}", idx.component_of(u)?);
        println!("component_size({u}) = {}", idx.component_size(u)?);
        if let Some(v) = v {
            println!("same_component({u}, {v}) = {}", idx.same_component(u, v)?);
        }
        if stats {
            eprintln!(
                "index: {} nodes, {} components, {} bytes",
                idx.n_nodes(),
                idx.n_sccs(),
                idx.len_bytes()
            );
            eprintln!("open I/O: {open_ios}");
            eprintln!("query I/O: {}", env.stats().snapshot().since(&open_ios));
            eprintln!("{}", storage_stats(&env));
        }
        Ok(())
    };
    match query_it() {
        Ok(()) => Ok(ExitCode::SUCCESS),
        Err(e) => {
            eprintln!("error: {e}");
            Ok(ExitCode::FAILURE)
        }
    }
}

/// Parses one `+U V` / `-U V` mutation (the `--deltas` file format and the
/// serve protocol share it). The sign may be glued to the first node
/// (`+3 4`) or stand alone (`+ 3 4`). Returns `(is_add, u, v)`.
fn parse_mutation(line: &str) -> Result<(bool, u32, u32), String> {
    let line = line.trim();
    let (is_add, rest) = match line.as_bytes().first() {
        Some(b'+') => (true, &line[1..]),
        Some(b'-') => (false, &line[1..]),
        _ => return Err(format!("bad mutation {line:?}: must start with '+' or '-'")),
    };
    let mut it = rest.split_whitespace();
    let mut node = |what: &str| -> Result<u32, String> {
        let tok = it
            .next()
            .ok_or_else(|| format!("mutation {line:?} needs {what}"))?;
        tok.parse::<u32>().map_err(|e| format!("bad node {tok:?}: {e}"))
    };
    let u = node("two nodes")?;
    let v = node("two nodes")?;
    if it.next().is_some() {
        return Err(format!("trailing tokens after mutation {line:?}"));
    }
    Ok((is_add, u, v))
}

/// Parses an `--add "U V"` / `--remove "U V"` pair value.
fn parse_pair(name: &str, s: &str) -> Result<(u32, u32), String> {
    let mut it = s.split_whitespace();
    let mut node = || -> Result<u32, String> {
        let tok = it.next().ok_or_else(|| format!("{name} needs \"U V\""))?;
        tok.parse::<u32>().map_err(|e| format!("bad {name} node {tok:?}: {e}"))
    };
    let u = node()?;
    let v = node()?;
    if it.next().is_some() {
        return Err(format!("{name} takes exactly two nodes, got {s:?}"));
    }
    Ok((u, v))
}

/// Opens a maintenance session over an existing artifact: the environment's
/// block size is sniffed from the artifact header (the delta engine patches
/// whole pages, so the geometries must agree), the base graph is loaded,
/// and the artifact is attached as the session's live index.
fn open_maintenance_session(
    index: &std::path::Path,
    input: &std::path::Path,
    mem: usize,
) -> Result<SccSession, Box<dyn std::error::Error>> {
    let block = contract_expand::graph::index::sniff_page_size(index)? as usize;
    let cfg = IoConfig::new(block, mem.max(2 * block));
    let mut session = SccSession::open(cfg, EnvOptions::pooled(&cfg))?
        .source(GraphSource::from_path(input))?;
    session.attach_index(index)?;
    Ok(session)
}

/// `scc index apply` — classify a batch of edge insertions/deletions
/// against the stored condensation DAG and commit one new index
/// generation.
fn run_index_apply(args: &[String]) -> Result<ExitCode, String> {
    let mut index: Option<PathBuf> = None;
    let mut input: Option<PathBuf> = None;
    let mut deltas: Option<PathBuf> = None;
    let mut adds: Vec<(u32, u32)> = Vec::new();
    let mut removes: Vec<(u32, u32)> = Vec::new();
    let mut mem = 64usize << 20;
    let mut stats = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match a.as_str() {
            "--index" => index = Some(PathBuf::from(value("--index")?)),
            "--input" => input = Some(PathBuf::from(value("--input")?)),
            "--deltas" => deltas = Some(PathBuf::from(value("--deltas")?)),
            "--add" => adds.push(parse_pair("--add", value("--add")?)?),
            "--remove" => removes.push(parse_pair("--remove", value("--remove")?)?),
            "--mem" => mem = parse_size(value("--mem")?)?,
            "--stats" => stats = true,
            "--help" | "-h" => {
                println!("{}", usage());
                return Ok(ExitCode::SUCCESS);
            }
            other => return Err(format!("unknown index apply argument {other:?}\n{}", usage())),
        }
    }
    let index = index.ok_or_else(|| format!("--index is required\n{}", usage()))?;
    let input = input.ok_or_else(|| format!("--input is required\n{}", usage()))?;
    if deltas.is_none() && adds.is_empty() && removes.is_empty() {
        return Err(format!(
            "nothing to apply: give --add/--remove pairs or --deltas FILE\n{}",
            usage()
        ));
    }

    let apply_it = || -> Result<(), Box<dyn std::error::Error>> {
        let mut batch = DeltaBatch::new();
        if let Some(path) = &deltas {
            let text = std::fs::read_to_string(path)?;
            for (no, line) in text.lines().enumerate() {
                let t = line.trim();
                if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
                    continue;
                }
                let (add, u, v) = parse_mutation(t)
                    .map_err(|e| format!("{}:{}: {e}", path.display(), no + 1))?;
                batch = if add { batch.add(u, v) } else { batch.remove(u, v) };
            }
        }
        for &(u, v) in &adds {
            batch = batch.add(u, v);
        }
        for &(u, v) in &removes {
            batch = batch.remove(u, v);
        }
        let session = open_maintenance_session(&index, &input, mem)?;
        let mut eng = session.delta_engine()?;
        let before = eng.generation();
        let r = eng.apply(&batch)?;
        println!(
            "applied {} ops to {}: generation {before} -> {}",
            batch.len(),
            index.display(),
            r.generation
        );
        println!(
            "  inserts: {} intra-component, {} dag-append, {} dag-reinforce, \
             {} merges ({} components, {} nodes)",
            r.intra_added, r.dag_appended, r.dag_reinforced, r.merges, r.merged_components,
            r.merged_nodes
        );
        println!(
            "  deletes: {} dirty-marked, {} dag-weakened, {} dag-dropped",
            r.dirty_marked, r.dag_weakened, r.dag_dropped
        );
        println!(
            "  index now: {} components ({} dirty), {} journal records",
            eng.n_sccs(),
            eng.n_dirty(),
            eng.n_journal()
        );
        if stats {
            eprintln!("label pages rewritten: {}", r.label_pages_rewritten);
            eprintln!("apply I/O: {}", r.ios);
        }
        Ok(())
    };
    match apply_it() {
        Ok(()) => Ok(ExitCode::SUCCESS),
        Err(e) => {
            eprintln!("error: {e}");
            Ok(ExitCode::FAILURE)
        }
    }
}

/// `scc index compact` — eagerly re-verify every deletion-dirtied
/// component (the explicit form of the lazy re-verification queries
/// perform).
fn run_index_compact(args: &[String]) -> Result<ExitCode, String> {
    let mut index: Option<PathBuf> = None;
    let mut input: Option<PathBuf> = None;
    let mut mem = 64usize << 20;
    let mut stats = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match a.as_str() {
            "--index" => index = Some(PathBuf::from(value("--index")?)),
            "--input" => input = Some(PathBuf::from(value("--input")?)),
            "--mem" => mem = parse_size(value("--mem")?)?,
            "--stats" => stats = true,
            "--help" | "-h" => {
                println!("{}", usage());
                return Ok(ExitCode::SUCCESS);
            }
            other => {
                return Err(format!("unknown index compact argument {other:?}\n{}", usage()))
            }
        }
    }
    let index = index.ok_or_else(|| format!("--index is required\n{}", usage()))?;
    let input = input.ok_or_else(|| format!("--input is required\n{}", usage()))?;

    let compact_it = || -> Result<(), Box<dyn std::error::Error>> {
        let session = open_maintenance_session(&index, &input, mem)?;
        let mut eng = session.delta_engine()?;
        let before = eng.generation();
        let dirty = eng.n_dirty();
        let r = eng.compact()?;
        println!(
            "compacted {}: generation {before} -> {}, {} of {dirty} dirty components \
             re-verified into {} ({} nodes relabeled, {} tombstoned DAG slots reclaimed)",
            index.display(),
            r.generation,
            r.components_reverified,
            r.components_after,
            r.relabeled_nodes,
            r.dag_slots_reclaimed
        );
        println!(
            "  index now: {} components ({} dirty), {} journal records",
            eng.n_sccs(),
            eng.n_dirty(),
            eng.n_journal()
        );
        if stats {
            eprintln!("compact I/O: {}", r.ios);
        }
        Ok(())
    };
    match compact_it() {
        Ok(()) => Ok(ExitCode::SUCCESS),
        Err(e) => {
            eprintln!("error: {e}");
            Ok(ExitCode::FAILURE)
        }
    }
}

/// One parsed query of the serve protocol.
enum ServeQuery {
    Point(u32),
    Same(u32, u32),
    Size(u32),
    Batch(Vec<u32>),
}

/// Deterministic xorshift64 step shared by the generated workload and the
/// self-test (seeds must never be 0; callers mix a nonzero constant in).
fn xorshift(x: &mut u64) -> u64 {
    *x ^= *x << 13;
    *x ^= *x >> 7;
    *x ^= *x << 17;
    *x
}

/// Draws one query of the mixed generated workload: mostly point lookups,
/// some pair checks, some batches (the ratio is arbitrary but fixed, so a
/// seed fully determines the workload).
fn gen_query(x: &mut u64, n_nodes: u32, batch: usize) -> ServeQuery {
    let node = |x: &mut u64| (xorshift(x) % n_nodes as u64) as u32;
    match xorshift(x) % 10 {
        0..=6 => ServeQuery::Point(node(x)),
        7 | 8 => ServeQuery::Same(node(x), node(x)),
        _ => ServeQuery::Batch((0..batch).map(|_| node(x)).collect()),
    }
}

/// Parses one protocol line (`c U` | `s U V` | `z U` | `b U1 U2 ...`).
fn parse_query(line: &str) -> Result<ServeQuery, String> {
    let mut it = line.split_whitespace();
    let op = it.next().ok_or("empty query line")?;
    let mut node = |what: &str| -> Result<u32, String> {
        let tok = it.next().ok_or_else(|| format!("{op:?} needs {what}"))?;
        tok.parse::<u32>().map_err(|e| format!("bad node {tok:?}: {e}"))
    };
    let q = match op {
        "c" => ServeQuery::Point(node("a node")?),
        "s" => ServeQuery::Same(node("two nodes")?, node("two nodes")?),
        "z" => ServeQuery::Size(node("a node")?),
        "b" => {
            let mut nodes = Vec::new();
            for tok in it {
                nodes.push(
                    tok.parse::<u32>().map_err(|e| format!("bad node {tok:?}: {e}"))?,
                );
            }
            if nodes.is_empty() {
                return Err("\"b\" needs at least one node".into());
            }
            return Ok(ServeQuery::Batch(nodes));
        }
        other => return Err(format!("unknown query op {other:?} (use c|s|z|b)")),
    };
    if it.next().is_some() {
        return Err(format!("trailing tokens after {op:?} query"));
    }
    Ok(q)
}

/// Answers one query as one output line; errors become inline
/// `error: ...` lines so the serving loop survives bad nodes.
fn answer_query(idx: &SccIndexReader, q: &ServeQuery) -> String {
    let r = match q {
        ServeQuery::Point(u) => {
            idx.component_of(*u).map(|r| format!("component_of({u}) = {r}"))
        }
        ServeQuery::Same(u, v) => idx
            .same_component(*u, *v)
            .map(|b| format!("same_component({u}, {v}) = {b}")),
        ServeQuery::Size(u) => {
            idx.component_size(*u).map(|s| format!("component_size({u}) = {s}"))
        }
        ServeQuery::Batch(us) => idx.component_of_many(us).map(|rs| {
            let reps: Vec<String> = rs.iter().map(|r| r.to_string()).collect();
            format!("component_of_many({}) = {}", us.len(), reps.join(" "))
        }),
    };
    r.unwrap_or_else(|e| format!("error: {e}"))
}

/// One parsed line of the stdin serve loop: a query, a `+U V` / `-U V`
/// mutation, or a parse error answered inline.
enum ServeLine {
    Query(Result<ServeQuery, String>),
    Mutate(bool, u32, u32),
    Bad(String),
}

/// Answers a run of consecutive queries by fanning them out across the
/// worker threads (one cloned reader handle each), preserving input order.
fn answer_run(
    idx: &SccIndexReader,
    threads: usize,
    queries: &[&Result<ServeQuery, String>],
) -> Vec<String> {
    let per = queries.len().div_ceil(threads);
    let answers: Vec<Vec<String>> = std::thread::scope(|s| {
        let handles: Vec<_> = queries
            .chunks(per)
            .map(|part| {
                let handle = idx.clone();
                s.spawn(move || {
                    part.iter()
                        .map(|q| match q {
                            Ok(q) => answer_query(&handle, q),
                            Err(msg) => format!("error: {msg}"),
                        })
                        .collect()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    });
    answers.into_iter().flatten().collect()
}

/// The stdin serving loop: lines are consumed in chunks, runs of queries
/// split across the worker threads (one cloned reader each), answers
/// printed in input order. Parse errors are answered inline without
/// reaching a worker.
///
/// With a writer (`--input` gave the loop the base graph), `+U V` / `-U V`
/// lines mutate the index: the writer classifies the edge through the
/// delta engine, materializes a new crash-safe generation on disk, and the
/// loop swaps the shared reader handle — every query after the mutation
/// line observes the new generation. Mutations serialize in line order; a
/// failed mutation leaves the artifact at its current generation and is
/// answered with an inline `error:` line. Returns (queries answered,
/// mutations applied).
fn serve_stdin(
    index_path: &std::path::Path,
    idx: &mut SccIndexReader,
    threads: usize,
    cache_blocks: usize,
    mut writer: Option<DeltaEngine<'_>>,
) -> Result<(u64, u64), Box<dyn std::error::Error>> {
    const CHUNK: usize = 4096;
    let stdin = std::io::stdin();
    let mut out = BufWriter::new(std::io::stdout().lock());
    let mut served = 0u64;
    let mut mutated = 0u64;
    let mut lines = std::io::BufRead::lines(stdin.lock());
    loop {
        let mut chunk: Vec<ServeLine> = Vec::with_capacity(CHUNK);
        for line in lines.by_ref().take(CHUNK) {
            let line = line?;
            let t = line.trim();
            if t.is_empty() {
                continue;
            }
            chunk.push(match t.as_bytes()[0] {
                b'+' | b'-' => match parse_mutation(t) {
                    Ok((add, u, v)) => ServeLine::Mutate(add, u, v),
                    Err(msg) => ServeLine::Bad(msg),
                },
                _ => ServeLine::Query(parse_query(t)),
            });
        }
        if chunk.is_empty() {
            break;
        }
        let mut i = 0;
        while i < chunk.len() {
            match &chunk[i] {
                ServeLine::Query(_) => {
                    let mut j = i;
                    while j < chunk.len() && matches!(chunk[j], ServeLine::Query(_)) {
                        j += 1;
                    }
                    let run: Vec<&Result<ServeQuery, String>> = chunk[i..j]
                        .iter()
                        .map(|l| match l {
                            ServeLine::Query(q) => q,
                            _ => unreachable!("run contains only queries"),
                        })
                        .collect();
                    served += run.len() as u64;
                    for line in answer_run(idx, threads, &run) {
                        writeln!(out, "{line}")?;
                    }
                    i = j;
                }
                ServeLine::Mutate(add, u, v) => {
                    let (add, u, v) = (*add, *u, *v);
                    let sign = if add { '+' } else { '-' };
                    let line = match writer.as_mut() {
                        None => "error: index is read-only (start serve with \
                                 --input GRAPH to enable mutations)"
                            .to_string(),
                        Some(eng) => {
                            let batch = if add {
                                DeltaBatch::new().add(u, v)
                            } else {
                                DeltaBatch::new().remove(u, v)
                            };
                            match eng.apply(&batch) {
                                Ok(r) => {
                                    // Atomic generation swap: reopen the
                                    // renamed artifact behind a fresh shared
                                    // pool and rebind the handle the query
                                    // workers clone from.
                                    *idx = SccIndex::open_shared(index_path, cache_blocks)?;
                                    mutated += 1;
                                    let kind = if add {
                                        if r.merges > 0 {
                                            "merge"
                                        } else if r.intra_added > 0 {
                                            "intra-component"
                                        } else if r.dag_reinforced > 0 {
                                            "dag-reinforce"
                                        } else {
                                            "dag-append"
                                        }
                                    } else if r.dirty_marked > 0 {
                                        "dirty-marked"
                                    } else if r.dag_dropped > 0 {
                                        "dag-drop"
                                    } else if r.dag_weakened > 0 {
                                        "dag-weaken"
                                    } else {
                                        "no-op"
                                    };
                                    format!(
                                        "applied {sign}({u}, {v}): {kind}, generation {}",
                                        r.generation
                                    )
                                }
                                Err(e) => format!("error: {e}"),
                            }
                        }
                    };
                    writeln!(out, "{line}")?;
                    i += 1;
                }
                ServeLine::Bad(msg) => {
                    writeln!(out, "error: {msg}")?;
                    i += 1;
                }
            }
        }
        out.flush()?;
    }
    Ok((served, mutated))
}

/// The generated-workload loop (`--queries K`): each thread replays its
/// deterministic slice of the workload on its own cloned reader handle.
/// Returns (queries served, aggregated logical I/O).
fn serve_generated(
    idx: &SccIndexReader,
    threads: usize,
    queries: u64,
    batch: usize,
    seed: u64,
) -> Result<(u64, IoSnapshot), Box<dyn std::error::Error>> {
    let n_nodes = u32::try_from(idx.n_nodes()).unwrap_or(u32::MAX);
    let per = queries.div_ceil(threads as u64);
    let results: Vec<Result<IoSnapshot, String>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads as u64)
            .map(|t| {
                let handle = idx.clone();
                s.spawn(move || {
                    let mine = per.min(queries.saturating_sub(t * per));
                    let mut x = seed ^ (0x9e37_79b9_7f4a_7c15 + t);
                    for _ in 0..mine {
                        let q = gen_query(&mut x, n_nodes, batch);
                        let line = answer_query(&handle, &q);
                        if line.starts_with("error: ") {
                            return Err(line);
                        }
                    }
                    Ok(handle.stats())
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    });
    let mut total = IoSnapshot::default();
    for r in results {
        total = total.plus(&r.map_err(|e| format!("generated workload failed: {e}"))?);
    }
    Ok((queries, total))
}

/// `scc serve --self-test`: builds a scratch index from a generated graph,
/// then replays one deterministic mixed workload on every thread against
/// the in-memory Tarjan oracle — checking answers *and* that each thread's
/// per-query logical I/O is bit-identical to the owned single-reader path.
fn serve_self_test(
    threads: usize,
    n_nodes: u32,
    seed: u64,
) -> Result<(), Box<dyn std::error::Error>> {
    const BLOCK: usize = 1024;
    const QUERIES: usize = 1500;
    let env = DiskEnv::new_temp(IoConfig::new(BLOCK, 4 << 20))?;
    let path = env.root().join("self-test.sccidx");
    let reps = contract_expand::harness::build_query_index(&env, &path, n_nodes, seed)?;
    let mut sizes = std::collections::HashMap::<u32, u64>::new();
    for &r in &reps {
        *sizes.entry(r).or_default() += 1;
    }

    // The workload every thread (and the owned baseline) replays.
    let mut x = seed ^ 0x9e37_79b9_7f4a_7c15;
    let workload: Vec<ServeQuery> =
        (0..QUERIES).map(|_| gen_query(&mut x, n_nodes, 8)).collect();

    // Owned single-reader baseline: per-query logical deltas.
    let mut owned = SccIndex::open(&env, &path)?;
    let mut owned_deltas = Vec::with_capacity(workload.len());
    let mut last = env.stats().snapshot();
    for q in &workload {
        match q {
            ServeQuery::Point(u) => drop(owned.component_of(*u)?),
            ServeQuery::Same(u, v) => drop(owned.same_component(*u, *v)?),
            ServeQuery::Size(u) => drop(owned.component_size(*u)?),
            ServeQuery::Batch(us) => drop(owned.component_of_many(us)?),
        }
        let now = env.stats().snapshot();
        owned_deltas.push(now.since(&last));
        last = now;
    }

    let reader = SccIndex::open_shared(&path, 256)?;
    let failures: Vec<String> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let handle = reader.clone();
                let (workload, reps, sizes, owned_deltas) =
                    (&workload, &reps, &sizes, &owned_deltas);
                s.spawn(move || -> Result<(), String> {
                    let mut last = handle.stats();
                    for (i, q) in workload.iter().enumerate() {
                        let err = |what: String| format!("thread {t}, query {i}: {what}");
                        match q {
                            ServeQuery::Point(u) => {
                                let got = handle
                                    .component_of(*u)
                                    .map_err(|e| err(e.to_string()))?;
                                if got != reps[*u as usize] {
                                    return Err(err(format!(
                                        "component_of({u}) = {got}, oracle says {}",
                                        reps[*u as usize]
                                    )));
                                }
                            }
                            ServeQuery::Same(u, v) => {
                                let got = handle
                                    .same_component(*u, *v)
                                    .map_err(|e| err(e.to_string()))?;
                                let want = reps[*u as usize] == reps[*v as usize];
                                if got != want {
                                    return Err(err(format!(
                                        "same_component({u}, {v}) = {got}, oracle says {want}"
                                    )));
                                }
                            }
                            ServeQuery::Size(u) => {
                                let got = handle
                                    .component_size(*u)
                                    .map_err(|e| err(e.to_string()))?;
                                let want = sizes[&reps[*u as usize]];
                                if got != want {
                                    return Err(err(format!(
                                        "component_size({u}) = {got}, oracle says {want}"
                                    )));
                                }
                            }
                            ServeQuery::Batch(us) => {
                                let got = handle
                                    .component_of_many(us)
                                    .map_err(|e| err(e.to_string()))?;
                                let want: Vec<u32> =
                                    us.iter().map(|&u| reps[u as usize]).collect();
                                if got != want {
                                    return Err(err("batch answers diverge".into()));
                                }
                            }
                        }
                        let now = handle.stats();
                        let delta = now.since(&last);
                        last = now;
                        if delta != owned_deltas[i] {
                            return Err(err(format!(
                                "logical I/O {delta:?} != owned {:?}",
                                owned_deltas[i]
                            )));
                        }
                    }
                    Ok(())
                })
            })
            .collect();
        handles
            .into_iter()
            .filter_map(|h| h.join().expect("worker panicked").err())
            .collect()
    });
    if let Some(first) = failures.first() {
        return Err(format!("self-test failed: {first}").into());
    }
    println!(
        "self-test ok: {} queries x {threads} threads over {n_nodes} nodes \
         ({} components); answers match the oracle, per-query logical I/O \
         identical to the owned path",
        workload.len(),
        reader.n_sccs()
    );
    Ok(())
}

/// `scc serve` — the concurrent query loop (see the module docs for the
/// protocol and modes).
fn run_serve(args: &[String]) -> Result<ExitCode, String> {
    let mut index: Option<PathBuf> = None;
    let mut input: Option<PathBuf> = None;
    let mut mem = 64usize << 20;
    let mut threads = 1usize;
    let mut cache_blocks = 1024usize;
    let mut queries: Option<u64> = None;
    let mut batch = 16usize;
    let mut seed = 42u64;
    let mut nodes = 5000u32;
    let mut self_test = false;
    let mut stats = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        fn num<T: std::str::FromStr>(name: &str, s: &str) -> Result<T, String>
        where
            T::Err: std::fmt::Display,
        {
            s.parse::<T>().map_err(|e| format!("bad {name} {s:?}: {e}"))
        }
        match a.as_str() {
            "--index" => index = Some(PathBuf::from(value("--index")?)),
            "--input" => input = Some(PathBuf::from(value("--input")?)),
            "--mem" => mem = parse_size(value("--mem")?)?,
            "--threads" => {
                threads = num("--threads", value("--threads")?)?;
                if threads == 0 {
                    // A runtime rejection (exit 1), not the usage exit-2
                    // path: one clean error line, no usage dump.
                    eprintln!("error: --threads must be at least 1");
                    return Ok(ExitCode::FAILURE);
                }
                if threads > 1024 {
                    return Err("--threads must be in 1..=1024".into());
                }
            }
            "--cache-blocks" => cache_blocks = num("--cache-blocks", value("--cache-blocks")?)?,
            "--queries" => queries = Some(num("--queries", value("--queries")?)?),
            "--batch" => {
                batch = num("--batch", value("--batch")?)?;
                if batch == 0 {
                    return Err("--batch must be positive".into());
                }
            }
            "--seed" => seed = num("--seed", value("--seed")?)?,
            "--nodes" => {
                nodes = num("--nodes", value("--nodes")?)?;
                if nodes == 0 {
                    return Err("--nodes must be positive".into());
                }
            }
            "--self-test" => self_test = true,
            "--stats" => stats = true,
            "--help" | "-h" => {
                println!("{}", usage());
                return Ok(ExitCode::SUCCESS);
            }
            other => return Err(format!("unknown serve argument {other:?}\n{}", usage())),
        }
    }

    let serve_it = || -> Result<(), Box<dyn std::error::Error>> {
        if self_test {
            if input.is_some() {
                return Err("--input (mutations) does not combine with --self-test".into());
            }
            return serve_self_test(threads, nodes, seed);
        }
        if input.is_some() && queries.is_some() {
            return Err(
                "--input (mutations) only applies to the stdin loop; drop --queries".into(),
            );
        }
        let index = index
            .as_ref()
            .ok_or_else(|| format!("--index is required (or --self-test)\n{}", usage()))?;
        let mut reader = SccIndex::open_shared(index, cache_blocks)?;
        if reader.n_nodes() == 0 {
            return Err("index covers 0 nodes; nothing to serve".into());
        }
        eprintln!(
            "serving {}: {} nodes, {} components, {} bytes; {} threads, {} cache blocks",
            index.display(),
            reader.n_nodes(),
            reader.n_sccs(),
            reader.len_bytes(),
            threads,
            cache_blocks
        );
        // Metrics (and the serve span) only record into a live sink;
        // without --stats the whole observability path stays disabled and
        // costs one thread-local branch per query batch.
        let _guard = stats.then(|| {
            contract_expand::obs::install(std::rc::Rc::new(contract_expand::obs::MemSink::new()))
        });
        let sp = contract_expand::obs::span!("serve", threads = threads as u64);
        let t0 = std::time::Instant::now();
        let served = match queries {
            Some(k) => {
                let (served, logical) = serve_generated(&reader, threads, k, batch, seed)?;
                let wall = t0.elapsed();
                let qps = served as f64 / wall.as_secs_f64().max(1e-9);
                println!(
                    "served {served} queries on {threads} threads in {:.1} ms ({qps:.0} qps)",
                    wall.as_secs_f64() * 1e3
                );
                if stats {
                    eprintln!("workload logical I/O: {logical}");
                }
                served
            }
            None => {
                // The single-writer session: its environment's block size is
                // sniffed from the artifact so the delta engine's page
                // patches line up with the stored geometry.
                let writer_session;
                let writer = match &input {
                    Some(graph) => {
                        let s = open_maintenance_session(index, graph, mem)?;
                        writer_session = s;
                        let eng = writer_session.delta_engine()?;
                        eprintln!(
                            "mutations enabled from {}: generation {}, {} journal records",
                            graph.display(),
                            eng.generation(),
                            eng.n_journal()
                        );
                        Some(eng)
                    }
                    None => None,
                };
                let (served, mutated) =
                    serve_stdin(index, &mut reader, threads, cache_blocks, writer)?;
                if mutated > 0 {
                    eprintln!(
                        "applied {mutated} mutations; index at generation {}",
                        reader.generation()
                    );
                }
                served
            }
        };
        let wall = t0.elapsed();
        sp.close(&[("queries", served)], 0);
        contract_expand::obs::metrics::counter_add("serve.queries", served);
        contract_expand::obs::metrics::gauge_set(
            "serve.qps",
            (served as f64 / wall.as_secs_f64().max(1e-9)) as u64,
        );
        if stats {
            eprintln!(
                "served {served} queries in {:.1} ms; {}",
                wall.as_secs_f64() * 1e3,
                reader.phys()
            );
            let metrics = contract_expand::obs::metrics::snapshot();
            if !metrics.is_empty() {
                eprint!("{}", contract_expand::obs::metrics::render(&metrics));
            }
        }
        Ok(())
    };
    match serve_it() {
        Ok(()) => Ok(ExitCode::SUCCESS),
        Err(e) => {
            eprintln!("error: {e}");
            Ok(ExitCode::FAILURE)
        }
    }
}

/// `scc index build|query|apply|compact` dispatch.
fn run_index(args: &[String]) -> Result<ExitCode, String> {
    match args.first().map(String::as_str) {
        Some("build") => run_index_build(&args[1..]),
        Some("query") => run_index_query(&args[1..]),
        Some("apply") => run_index_apply(&args[1..]),
        Some("compact") => run_index_compact(&args[1..]),
        Some("--help") | Some("-h") => {
            println!("{}", usage());
            Ok(ExitCode::SUCCESS)
        }
        Some(other) => Err(format!("unknown index subcommand {other:?}\n{}", usage())),
        None => Err(format!("index requires build|query|apply|compact\n{}", usage())),
    }
}

/// Flat-flag / `scc run` entry point (byte-compatible output).
fn run_flat(args: &[String]) -> ExitCode {
    let opts = match parse_args(args) {
        Ok(Some(o)) => o,
        Ok(None) => {
            println!("{}", usage());
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    if opts.threads == 0 {
        // A runtime rejection (exit 1), not the usage exit-2 path: one
        // clean error line, no usage dump.
        eprintln!("error: --threads must be at least 1");
        return ExitCode::FAILURE;
    }
    match run(&opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let dispatch = |result: Result<ExitCode, String>| match result {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
    };
    match argv.first().map(String::as_str) {
        Some("--version") | Some("-V") => {
            println!("scc {}", env!("CARGO_PKG_VERSION"));
            ExitCode::SUCCESS
        }
        Some("verify") => dispatch(run_verify(&argv[1..])),
        Some("plan") => dispatch(run_plan(&argv[1..])),
        Some("index") => dispatch(run_index(&argv[1..])),
        Some("serve") => dispatch(run_serve(&argv[1..])),
        Some("run") => run_flat(&argv[1..]),
        _ => run_flat(&argv),
    }
}
