//! `scc` — command-line SCC computation over text or binary edge lists.
//!
//! ```text
//! scc --input graph.txt [--mem 64M] [--block 64K] [--baseline]
//!     [--backend file|mem] [--cache-blocks N]
//!     [--out labels.txt] [--condense dag.txt] [--export-binary g.ceg]
//!     [--scratch DIR] [--stats]
//! scc verify [--scale smoke|full]
//! ```
//!
//! `scc verify` runs the `ce-harness` differential conformance matrix:
//! every registered algorithm (the five external engines plus the in-memory
//! oracles) over every scenario {workload family × memory budget × backend ×
//! buffer pool × fault point}, asserting partition equivalence and
//! logical-I/O determinism. The summary table on stdout is deterministic and
//! byte-stable (golden-tested); the exit code is 0 iff every check passed.
//!
//! Input: whitespace-separated `src dst` lines (`#`/`%` comments allowed).
//! Output: `node scc_representative` lines sorted by node. `--condense`
//! additionally writes the condensation DAG's edge list (computed
//! externally). The memory budget is honoured end to end: the node set of
//! the input graph is never loaded into RAM.
//!
//! `--backend` picks where scratch blocks live (on disk or in memory) and
//! `--cache-blocks` sizes the buffer pool in front of it (default: `M / B`
//! frames; 0 disables the pool). Neither changes the *logical* block-I/O
//! numbers reported — those count model transfers, as in the paper — but
//! `--stats` additionally reports the *physical* transfers and the pool's
//! hit/miss counters.

use std::io::{BufWriter, Write};
use std::path::PathBuf;
use std::process::ExitCode;

use contract_expand::graph::labels::condense_external;
use contract_expand::prelude::*;

struct Options {
    input: PathBuf,
    out: Option<PathBuf>,
    condense: Option<PathBuf>,
    export_binary: Option<PathBuf>,
    scratch: Option<PathBuf>,
    mem: usize,
    block: usize,
    backend: BackendKind,
    cache_blocks: Option<usize>,
    baseline: bool,
    stats: bool,
}

fn usage() -> &'static str {
    "usage: scc --input graph.txt|graph.ceg [--mem 64M] [--block 64K] [--baseline]\n\
     \x20          [--backend file|mem] [--cache-blocks N]\n\
     \x20          [--out labels.txt] [--condense dag.txt] [--export-binary g.ceg]\n\
     \x20          [--scratch DIR] [--stats]\n\
     \x20      scc verify [--scale smoke|full]"
}

/// `scc verify [--scale smoke|full]` — run the differential conformance
/// matrix (every registered algorithm on every scenario) and print the
/// summary table. Exits 0 iff every check passed.
fn run_verify(args: &[String]) -> Result<ExitCode, String> {
    let mut scale = HarnessScale::Smoke;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                let v = it.next().ok_or("--scale requires a value")?;
                scale = HarnessScale::parse(v)
                    .ok_or_else(|| format!("bad --scale {v:?}; use smoke|full"))?;
            }
            "--help" | "-h" => {
                println!("{}", usage());
                return Ok(ExitCode::SUCCESS);
            }
            other => return Err(format!("unknown verify argument {other:?}\n{}", usage())),
        }
    }
    let report = contract_expand::harness::run_matrix(scale)
        .map_err(|e| format!("conformance matrix failed to run: {e}"))?;
    print!("{report}");
    if report.all_ok() {
        Ok(ExitCode::SUCCESS)
    } else {
        for failure in report.failures() {
            eprintln!("conformance failure: {failure}");
        }
        Ok(ExitCode::FAILURE)
    }
}

fn parse_size(s: &str) -> Result<usize, String> {
    let (digits, mult) = match s.chars().last() {
        Some('K') | Some('k') => (&s[..s.len() - 1], 1usize << 10),
        Some('M') | Some('m') => (&s[..s.len() - 1], 1 << 20),
        Some('G') | Some('g') => (&s[..s.len() - 1], 1 << 30),
        _ => (s, 1),
    };
    digits
        .parse::<usize>()
        .map_err(|e| format!("bad size {s:?}: {e}"))
        .and_then(|v| {
            v.checked_mul(mult)
                .ok_or_else(|| format!("bad size {s:?}: overflows"))
        })
}

/// `Ok(None)` means `--help` was requested: print usage and exit 0.
fn parse_args() -> Result<Option<Options>, String> {
    let mut args = std::env::args().skip(1);
    let mut opts = Options {
        input: PathBuf::new(),
        out: None,
        condense: None,
        export_binary: None,
        scratch: None,
        mem: 64 << 20,
        block: 64 << 10,
        backend: BackendKind::File,
        cache_blocks: None,
        baseline: false,
        stats: false,
    };
    let mut have_input = false;
    while let Some(a) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match a.as_str() {
            "--input" => {
                opts.input = PathBuf::from(value("--input")?);
                have_input = true;
            }
            "--out" => opts.out = Some(PathBuf::from(value("--out")?)),
            "--condense" => opts.condense = Some(PathBuf::from(value("--condense")?)),
            "--export-binary" => {
                opts.export_binary = Some(PathBuf::from(value("--export-binary")?))
            }
            "--scratch" => opts.scratch = Some(PathBuf::from(value("--scratch")?)),
            "--mem" => opts.mem = parse_size(&value("--mem")?)?,
            "--block" => opts.block = parse_size(&value("--block")?)?,
            "--backend" => opts.backend = value("--backend")?.parse()?,
            "--cache-blocks" => {
                let v = value("--cache-blocks")?;
                opts.cache_blocks = Some(
                    v.parse::<usize>()
                        .map_err(|e| format!("bad --cache-blocks {v:?}: {e}"))?,
                );
            }
            "--baseline" => opts.baseline = true,
            "--stats" => opts.stats = true,
            "--help" | "-h" => return Ok(None),
            other => return Err(format!("unknown argument {other:?}\n{}", usage())),
        }
    }
    if !have_input {
        return Err(format!("--input is required\n{}", usage()));
    }
    if opts.block == 0 {
        return Err("block size must be nonzero".into());
    }
    match opts.block.checked_mul(2) {
        Some(two_blocks) if opts.mem >= two_blocks => {}
        _ => return Err("memory budget must be at least two blocks".into()),
    }
    Ok(Some(opts))
}

fn run(opts: &Options) -> Result<(), Box<dyn std::error::Error>> {
    let cfg = IoConfig::new(opts.block, opts.mem);
    let env_opts = EnvOptions {
        backend: opts.backend,
        cache_blocks: opts.cache_blocks.unwrap_or_else(|| cfg.blocks_in_memory()),
    };
    let env = match &opts.scratch {
        Some(dir) => DiskEnv::new_in_with(dir, cfg, env_opts)?,
        None => DiskEnv::new_temp_with(cfg, env_opts)?,
    };

    // `.ceg` files use the compact binary format; anything else is text.
    let graph = if opts.input.extension().is_some_and(|e| e == "ceg") {
        EdgeListGraph::open_binary(&env, &opts.input)?
    } else {
        EdgeListGraph::from_text(&env, &opts.input, None)?
    };
    eprintln!(
        "loaded {}: |V| = {}, |E| = {}",
        opts.input.display(),
        graph.n_nodes(),
        graph.n_edges()
    );
    if let Some(path) = &opts.export_binary {
        graph.save_binary(path)?;
        eprintln!("binary copy written to {}", path.display());
    }
    if opts.stats {
        let s = contract_expand::graph::stats::graph_stats(&env, &graph)?;
        eprintln!(
            "avg degree {:.2}, max in/out {}/{}, sources {}, sinks {}, isolated {}, self-loops {}",
            s.avg_degree(),
            s.max_in,
            s.max_out,
            s.sources,
            s.sinks,
            s.isolated,
            s.self_loops
        );
    }

    let cfg = if opts.baseline {
        ExtSccConfig::baseline()
    } else {
        ExtSccConfig::optimized()
    };
    let out = ExtScc::new(&env, cfg).run(&graph)?;
    eprintln!(
        "{} SCCs in {} contraction iterations, {} block I/Os, {:.2?}",
        out.report.n_sccs,
        out.report.iterations(),
        out.report.total_ios.total_ios(),
        out.report.total_wall
    );
    if opts.stats {
        eprintln!("{}", out.report);
        eprintln!(
            "storage: {} backend, {} cache blocks; {}",
            env.options().backend.name(),
            env.options().cache_blocks,
            env.phys()
        );
    }

    // Stream labels to the output without materializing them.
    let sink: Box<dyn std::io::Write> = match &opts.out {
        Some(path) => Box::new(std::fs::File::create(path)?),
        None => Box::new(std::io::stdout().lock()),
    };
    let mut w = BufWriter::new(sink);
    let mut r = out.labels.reader()?;
    while let Some(l) = r.next()? {
        writeln!(w, "{} {}", l.node, l.scc)?;
    }
    w.flush()?;

    if let Some(path) = &opts.condense {
        let dag = condense_external(&env, &graph, &out.labels)?;
        let mut w = BufWriter::new(std::fs::File::create(path)?);
        let mut r = dag.edges().reader()?;
        while let Some(e) = r.next()? {
            writeln!(w, "{} {}", e.src, e.dst)?;
        }
        w.flush()?;
        eprintln!(
            "condensation: {} edges written to {}",
            dag.n_edges(),
            path.display()
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("verify") {
        return match run_verify(&argv[1..]) {
            Ok(code) => code,
            Err(msg) => {
                eprintln!("{msg}");
                ExitCode::from(2)
            }
        };
    }
    let opts = match parse_args() {
        Ok(Some(o)) => o,
        Ok(None) => {
            println!("{}", usage());
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    match run(&opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
