//! # contract-expand
//!
//! I/O-efficient strongly connected component (SCC) computation for directed
//! graphs **whose node set does not fit in main memory** — a from-scratch
//! implementation of *"Contract & Expand: I/O Efficient SCCs Computing"*
//! (Zhiwei Zhang, Lu Qin, Jeffrey Xu Yu — ICDE 2014), together with every
//! substrate and baseline its evaluation depends on.
//!
//! ## Quick start
//!
//! Computing SCCs is the *indexing step* of a [`session::SccSession`]: pick
//! an I/O environment, point it at a graph, let the planner choose the
//! regime (semi-external when the node array fits `M`, contraction
//! otherwise), and materialize a persistent, queryable [`prelude::SccIndex`]
//! that answers component queries in a bounded number of block reads —
//! without ever recomputing SCCs.
//!
//! ```
//! use contract_expand::prelude::*;
//!
//! // An I/O environment: 4 KiB blocks, 256 KiB of "main memory", pooled.
//! let cfg = IoConfig::new(4 << 10, 256 << 10);
//! let mut session = SccSession::open(cfg, EnvOptions::pooled(&cfg)).unwrap()
//!     // 20k nodes need ~320 KiB of node state: contraction must run.
//!     .source(GraphSource::generator(|env| gen::web_like(env, 20_000, 4.0, 42)))
//!     .unwrap();
//!
//! // The planner explains its engine choice before any I/O is spent.
//! let plan = session.plan().unwrap();
//! assert_eq!(plan.engine, Engine::ExtSccOp);
//! assert!(plan.reason.contains("exceeds"));
//!
//! // Build the persistent index (runs Ext-SCC-Op, writes the artifact,
//! // reopens it through its checksum validation).
//! let path = std::env::temp_dir().join(format!("ce-doc-{}.sccidx", std::process::id()));
//! let mut built = session.build_index(&path).unwrap();
//! assert_eq!(built.run.n_sccs, built.index.n_sccs());
//!
//! // Point queries cost at most two block reads each (one for
//! // `component_of`, zero/one/two for `same_component`), counted in the
//! // same logical I/O model as the build.
//! let rep = built.index.component_of(7).unwrap();
//! assert!(built.index.same_component(7, rep).unwrap());
//! assert!(built.index.component_size(7).unwrap() >= 1);
//! std::fs::remove_file(&path).unwrap();
//! ```
//!
//! The flat engine API is still there underneath — `ExtScc::new(&env,
//! ExtSccConfig::optimized()).run(&graph)` — for ablations and benches that
//! must pin a configuration.
//!
//! ## Crate map
//!
//! | crate | contents |
//! |-------|----------|
//! | [`obs`] | observability substrate: RAII spans, metrics registry, pluggable sinks (null / in-memory / JSON lines), zero-cost when disabled |
//! | [`pager`] | storage substrate: pluggable block backends (file / in-memory) + counted buffer pool (LRU, pins, dirty write-back) |
//! | [`extmem`] | I/O model: counted block files, external sort, merge joins, buffered repository tree |
//! | [`graph`] | edge-list graphs, CSR, Tarjan/Kosaraju, workload generators, **engine planner** ([`graph::planner`]) and the **persistent [`graph::index::SccIndex`]** artifact |
//! | [`semi_scc`] | semi-external base case (coloring and spanning-tree variants) + [`semi_scc::planner_for`] |
//! | [`core`] | **the paper's contribution**: Ext-SCC / Ext-SCC-Op |
//! | [`dfs_scc`] | external-DFS baseline (naive + BRT) |
//! | [`em_scc`] | contraction-heuristic baseline with stall detection |
//! | [`harness`] | differential conformance: a scenario matrix running every engine through the unified `SccAlgorithm` trait against in-memory oracles, plus planner-agreement and index round-trip checks (`scc verify`) |
//! | [`session`] | the user-facing layer: [`session::SccSession`] (source → plan → build_index) over the planner and the index |
//! | [`util`] | shared helpers ([`util::parse_size`]) |
//!
//! The model's **logical** I/O counters (`IoStats`, what the paper's figures
//! plot) are independent of the storage substrate: pick a backend and a
//! buffer-pool size per environment via [`prelude::EnvOptions`] (or split
//! one strict `M`-byte budget between pool and algorithm with
//! `EnvOptions::strict`), read the **physical** transfer counters via
//! `DiskEnv::phys()`, and the logical numbers stay bit-for-bit identical
//! while wall-clock and physical transfers drop.
//!
//! Both counter families are *attributable*: install an [`obs`] sink (what
//! `scc run --trace human|json` does) and every contraction iteration and
//! phase — Get-V, Get-E, expansion, sort passes, coloring rounds — closes a
//! span carrying exactly the logical/physical I/O delta it consumed, with
//! leaf deltas summing to the run totals. The disabled path (no sink, or
//! [`obs::NullSink`]) costs one thread-local branch and zero allocations.
//!
//! See `DESIGN.md` for the full system inventory and `EXPERIMENTS.md` for the
//! reproduction of every table and figure in the paper's evaluation.

pub use ce_core as core;
pub use ce_dfs_scc as dfs_scc;
pub use ce_em_scc as em_scc;
pub use ce_extmem as extmem;
pub use ce_graph as graph;
pub use ce_harness as harness;
pub use ce_obs as obs;
pub use ce_pager as pager;
pub use ce_semi_scc as semi_scc;

pub mod session;
pub mod util;

/// The common imports for applications.
pub mod prelude {
    pub use ce_core::{ExtScc, ExtSccAlgo, ExtSccConfig, ExtSccError, RunReport, SccOutput};
    pub use ce_dfs_scc::DfsSccAlgo;
    pub use ce_em_scc::EmSccAlgo;
    pub use ce_extmem::{BackendKind, DiskEnv, EnvOptions, IoConfig, IoSnapshot, PhysSnapshot};
    pub use ce_graph::algo::{AlgoBudget, AlgoError, SccAlgorithm, SccRun};
    pub use ce_graph::gen;
    pub use ce_graph::planner::{Engine, Plan, Planner};
    pub use ce_graph::{
        CompactReport, CountedEdge, CsrGraph, DeltaBatch, DeltaEngine, DeltaReport, Edge,
        EdgeListGraph, KosarajuOracle, NodeId, SccIndex, SccIndexReader, SccLabel, SccLabeling,
        TarjanOracle,
    };
    pub use ce_harness::HarnessScale;
    pub use ce_semi_scc::{planner_for, SemiSccAlgo, SemiSccKind};

    pub use crate::session::{GraphSource, IndexBuild, SccSession};
    pub use crate::util::parse_size;
}
