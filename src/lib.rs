//! # contract-expand
//!
//! I/O-efficient strongly connected component (SCC) computation for directed
//! graphs **whose node set does not fit in main memory** — a from-scratch
//! implementation of *"Contract & Expand: I/O Efficient SCCs Computing"*
//! (Zhiwei Zhang, Lu Qin, Jeffrey Xu Yu — ICDE 2014), together with every
//! substrate and baseline its evaluation depends on.
//!
//! ## Quick start
//!
//! ```
//! use contract_expand::prelude::*;
//!
//! // An I/O environment: 4 KiB blocks, 256 KiB of "main memory".
//! let env = DiskEnv::new_temp(IoConfig::new(4 << 10, 256 << 10)).unwrap();
//!
//! // A synthetic web-like graph (20k nodes — node arrays exceed the budget).
//! let graph = gen::web_like(&env, 20_000, 4.0, 42).unwrap();
//!
//! // Run Ext-SCC-Op (contraction + expansion with Section-VII reductions).
//! let out = ExtScc::new(&env, ExtSccConfig::optimized()).run(&graph).unwrap();
//! println!("{}", out.report); // per-iteration |V_i|, |E_i|, I/Os ...
//! assert!(out.report.iterations() >= 1);
//!
//! // Labels are an external file of (node, scc-representative), node-sorted.
//! let labeling = SccLabeling::from_file(&out.labels, graph.n_nodes()).unwrap();
//! assert_eq!(labeling.rep.len(), 20_000);
//! ```
//!
//! ## Crate map
//!
//! | crate | contents |
//! |-------|----------|
//! | [`pager`] | storage substrate: pluggable block backends (file / in-memory) + counted buffer pool (LRU, pins, dirty write-back) |
//! | [`extmem`] | I/O model: counted block files, external sort, merge joins, buffered repository tree |
//! | [`graph`] | edge-list graphs, CSR, Tarjan/Kosaraju, workload generators |
//! | [`semi_scc`] | semi-external base case (coloring and spanning-tree variants) |
//! | [`core`] | **the paper's contribution**: Ext-SCC / Ext-SCC-Op |
//! | [`dfs_scc`] | external-DFS baseline (naive + BRT) |
//! | [`em_scc`] | contraction-heuristic baseline with stall detection |
//! | [`harness`] | differential conformance: a scenario matrix running every engine through the unified `SccAlgorithm` trait against in-memory oracles (`scc verify`) |
//!
//! The model's **logical** I/O counters (`IoStats`, what the paper's figures
//! plot) are independent of the storage substrate: pick a backend and a
//! buffer-pool size per environment via [`prelude::EnvOptions`], read the
//! **physical** transfer counters via `DiskEnv::phys()`, and the logical
//! numbers stay bit-for-bit identical while wall-clock and physical
//! transfers drop.
//!
//! See `DESIGN.md` for the full system inventory and `EXPERIMENTS.md` for the
//! reproduction of every table and figure in the paper's evaluation.

pub use ce_core as core;
pub use ce_dfs_scc as dfs_scc;
pub use ce_em_scc as em_scc;
pub use ce_extmem as extmem;
pub use ce_graph as graph;
pub use ce_harness as harness;
pub use ce_pager as pager;
pub use ce_semi_scc as semi_scc;

/// The common imports for applications.
pub mod prelude {
    pub use ce_core::{ExtScc, ExtSccAlgo, ExtSccConfig, ExtSccError, RunReport, SccOutput};
    pub use ce_dfs_scc::DfsSccAlgo;
    pub use ce_em_scc::EmSccAlgo;
    pub use ce_extmem::{BackendKind, DiskEnv, EnvOptions, IoConfig, IoSnapshot, PhysSnapshot};
    pub use ce_graph::algo::{AlgoBudget, AlgoError, SccAlgorithm, SccRun};
    pub use ce_graph::gen;
    pub use ce_graph::{
        CsrGraph, Edge, EdgeListGraph, KosarajuOracle, NodeId, SccLabel, SccLabeling, TarjanOracle,
    };
    pub use ce_harness::HarnessScale;
    pub use ce_semi_scc::{SemiSccAlgo, SemiSccKind};
}
